"""BGP-4: external routing for VINI experiments.

Section 3.2 requires each experiment's routing to discover "routes to
external destinations", and Section 3.4 requires experiments to
exchange BGP announcements with real neighboring networks. This module
implements the BGP machinery those experiments run: sessions with
OPEN/KEEPALIVE/UPDATE/NOTIFICATION semantics and hold timers, adj-RIBs,
the standard decision process, policy hooks, MRAI batching, AS-path
loop prevention, and RIB installation — enough to drive the Section 6.1
BGP multiplexer and end-to-end route propagation experiments.

Sessions run over a reliable, ordered transport abstraction
(:class:`DirectTransport` provides an in-memory pair with delay and
failure injection, standing in for the TCP connection real BGP uses).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.net.addr import IPv4Address, Prefix, ip, prefix
from repro.routing.rib import AdminDistance, RIB, RibRoute
from repro.sim.engine import Simulator
from repro.sim.timer import PeriodicTimer, Timeout

DEFAULT_HOLD_TIME = 90.0
DEFAULT_MRAI = 5.0  # paper-era eBGP default is 30 s; short for experiments

ORIGIN_IGP = 0
ORIGIN_EGP = 1
ORIGIN_INCOMPLETE = 2

IDLE = "Idle"
OPEN_SENT = "OpenSent"
ESTABLISHED = "Established"


class BGPRoute:
    """A BGP path for one prefix."""

    __slots__ = ("prefix", "as_path", "nexthop", "local_pref", "med", "origin")

    def __init__(
        self,
        pfx: Union[str, Prefix],
        as_path: Tuple[int, ...],
        nexthop: Union[str, IPv4Address],
        local_pref: int = 100,
        med: int = 0,
        origin: int = ORIGIN_IGP,
    ):
        self.prefix = prefix(pfx)
        self.as_path = tuple(as_path)
        self.nexthop = ip(nexthop)
        self.local_pref = local_pref
        self.med = med
        self.origin = origin

    def copy(self) -> "BGPRoute":
        return BGPRoute(
            self.prefix, self.as_path, self.nexthop, self.local_pref, self.med, self.origin
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BGPRoute {self.prefix} as_path={self.as_path} nh={self.nexthop}>"


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
class Open:
    __slots__ = ("asn", "router_id", "hold_time")

    def __init__(self, asn: int, router_id: int, hold_time: float):
        self.asn = asn
        self.router_id = router_id
        self.hold_time = hold_time


class Update:
    __slots__ = ("announce", "withdraw")

    def __init__(self, announce: List[BGPRoute], withdraw: List[Prefix]):
        self.announce = announce
        self.withdraw = withdraw


class Keepalive:
    __slots__ = ()


class Notification:
    __slots__ = ("reason",)

    def __init__(self, reason: str):
        self.reason = reason


# ----------------------------------------------------------------------
# Transport
# ----------------------------------------------------------------------
class DirectTransport:
    """One endpoint of a reliable in-order message channel."""

    def __init__(self, sim: Simulator, delay: float):
        self.sim = sim
        self.delay = delay
        self.peer: Optional["DirectTransport"] = None
        self.on_receive: Optional[Callable[[object], None]] = None
        self.on_down: Optional[Callable[[], None]] = None
        self.up = True
        self.silent = False
        self.tx_messages = 0

    @classmethod
    def pair(cls, sim: Simulator, delay: float = 0.010) -> Tuple["DirectTransport", "DirectTransport"]:
        a, b = cls(sim, delay), cls(sim, delay)
        a.peer, b.peer = b, a
        return a, b

    def send(self, message: object) -> None:
        if not self.up or self.silent or self.peer is None:
            return
        self.tx_messages += 1
        self.sim.at(self.delay, self.peer._deliver, message)

    def _deliver(self, message: object) -> None:
        if self.up and self.on_receive is not None:
            self.on_receive(message)

    def fail(self) -> None:
        """Break the channel both ways (a TCP session reset)."""
        for endpoint in (self, self.peer):
            if endpoint is not None and endpoint.up:
                endpoint.up = False
                if endpoint.on_down is not None:
                    endpoint.on_down()

    def blackhole(self) -> None:
        """Silently drop messages both ways *without* signalling either
        endpoint. Unlike :meth:`fail`, neither side's ``on_down`` fires:
        the control plane cannot see the break, so routes through the
        peer stay installed (stuck) until hold timers expire."""
        for endpoint in (self, self.peer):
            if endpoint is not None:
                endpoint.silent = True

    def restore(self) -> None:
        for endpoint in (self, self.peer):
            if endpoint is not None:
                endpoint.up = True
                endpoint.silent = False


# ----------------------------------------------------------------------
# Session
# ----------------------------------------------------------------------
class BGPSession:
    """One configured peering of a :class:`BGPDaemon`."""

    def __init__(
        self,
        daemon: "BGPDaemon",
        transport: DirectTransport,
        peer_asn: int,
        name: str = "",
        hold_time: float = DEFAULT_HOLD_TIME,
        mrai: float = DEFAULT_MRAI,
        import_policy: Optional[Callable[[BGPRoute], Optional[BGPRoute]]] = None,
        export_policy: Optional[Callable[[BGPRoute], Optional[BGPRoute]]] = None,
        local_addr: Optional[Union[str, IPv4Address]] = None,
        nexthop_self: bool = False,
    ):
        self.daemon = daemon
        self.sim = daemon.sim
        self.transport = transport
        self.peer_asn = peer_asn
        self.name = name or f"as{peer_asn}"
        self.hold_time = hold_time
        self.mrai = mrai
        self.import_policy = import_policy
        self.export_policy = export_policy
        # eBGP next hop: the address of our end of the shared subnet, so
        # the neighbor can resolve it against its connected route. Falls
        # back to the router id when the session has no local address.
        self.local_addr = ip(local_addr) if local_addr is not None else None
        # iBGP next-hop-self: rewrite eBGP-learned next hops to our own
        # router id, which every iBGP peer can reach through the IGP.
        self.nexthop_self = nexthop_self
        self.state = IDLE
        self.peer_router_id = 0
        self.adj_rib_in: Dict[Tuple[int, int], BGPRoute] = {}
        self.advertised: Dict[Tuple[int, int], BGPRoute] = {}
        self._pending_announce: Dict[Tuple[int, int], BGPRoute] = {}
        self._pending_withdraw: set = set()
        self._mrai_timer: Optional[object] = None
        self._hold_timer = Timeout(self.sim, hold_time, self._hold_expired)
        self._keepalive_timer = PeriodicTimer(
            self.sim, max(hold_time / 3.0, 1.0), self._send_keepalive, start=False
        )
        transport.on_receive = self._receive
        transport.on_down = self._transport_down
        self.updates_sent = 0
        self.updates_received = 0
        self.routes_announced = 0
        self.routes_withdrawn = 0
        metrics = self.sim.metrics
        labels = dict(daemon=daemon.name, peer=self.name)
        metrics.counter("bgp.updates_sent", fn=lambda: self.updates_sent, **labels)
        metrics.counter("bgp.updates_received", fn=lambda: self.updates_received, **labels)
        # Route-level churn: NLRI announced/withdrawn inside the batched
        # updates (one Update message can carry many of each).
        metrics.counter("bgp.routes_announced", fn=lambda: self.routes_announced, **labels)
        metrics.counter("bgp.routes_withdrawn", fn=lambda: self.routes_withdrawn, **labels)
        metrics.gauge(
            "bgp.session_up",
            fn=lambda: 1 if self.state == ESTABLISHED else 0,
            **labels,
        )
        metrics.gauge("bgp.adj_rib_in_routes", fn=lambda: len(self.adj_rib_in), **labels)
        # Convergence timestamp: sim time the session last reached
        # ESTABLISHED.
        self._established_gauge = metrics.gauge("bgp.last_established_time", **labels)

    @property
    def is_ebgp(self) -> bool:
        return self.peer_asn != self.daemon.asn

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.state != IDLE:
            return
        self.state = OPEN_SENT
        self.transport.send(Open(self.daemon.asn, self.daemon.router_id, self.hold_time))
        self._hold_timer.restart(self.hold_time)

    def _receive(self, message: object) -> None:
        if isinstance(message, Open):
            self._on_open(message)
        elif isinstance(message, Keepalive):
            self._hold_timer.restart(self.hold_time)
        elif isinstance(message, Update):
            self._hold_timer.restart(self.hold_time)
            self._on_update(message)
        elif isinstance(message, Notification):
            self._go_down(f"notification: {message.reason}")

    def _on_open(self, message: Open) -> None:
        if message.asn != self.peer_asn:
            self.transport.send(Notification("bad peer AS"))
            self._go_down("bad peer AS")
            return
        self.peer_router_id = message.router_id
        self.hold_time = min(self.hold_time, message.hold_time)
        if self.state == IDLE:
            # Passive side: respond with our own OPEN.
            self.transport.send(
                Open(self.daemon.asn, self.daemon.router_id, self.hold_time)
            )
        self.state = ESTABLISHED
        self._established_gauge.set(self.sim.now)
        self._hold_timer.restart(self.hold_time)
        self._keepalive_timer.reschedule(max(self.hold_time / 3.0, 1.0))
        self.transport.send(Keepalive())
        self.sim.trace.log(
            "bgp_session", daemon=self.daemon.name, peer=self.name, state=ESTABLISHED
        )
        self.daemon._session_established(self)

    def _send_keepalive(self) -> None:
        if self.state == ESTABLISHED:
            self.transport.send(Keepalive())

    def _hold_expired(self) -> None:
        self._go_down("hold timer expired")

    def _transport_down(self) -> None:
        self._go_down("transport down")

    def _go_down(self, reason: str) -> None:
        if self.state == IDLE:
            return
        self.state = IDLE
        self._hold_timer.cancel()
        self._keepalive_timer.stop()
        self.sim.trace.log(
            "bgp_session", daemon=self.daemon.name, peer=self.name, state=IDLE,
            reason=reason,
        )
        learned = list(self.adj_rib_in.values())
        self.adj_rib_in.clear()
        self.advertised.clear()
        self._pending_announce.clear()
        self._pending_withdraw.clear()
        self.daemon._session_down(self, learned)

    # ------------------------------------------------------------------
    def _on_update(self, update: Update) -> None:
        self.updates_received += 1
        for pfx in update.withdraw:
            self.adj_rib_in.pop(pfx.key, None)
            self.daemon._route_changed(pfx)
        for route in update.announce:
            if self.daemon.asn in route.as_path:
                continue  # AS-path loop
            imported = route.copy()
            if self.import_policy is not None:
                imported = self.import_policy(imported)
                if imported is None:
                    continue
            self.adj_rib_in[imported.prefix.key] = imported
            self.daemon._route_changed(imported.prefix)

    # ------------------------------------------------------------------
    # Advertisement with MRAI batching
    # ------------------------------------------------------------------
    def advertise(self, route: BGPRoute) -> None:
        exported = route.copy()
        if self.export_policy is not None:
            exported = self.export_policy(exported)
            if exported is None:
                self.withdraw(route.prefix)
                return
        if self.is_ebgp:
            exported.as_path = (self.daemon.asn,) + exported.as_path
            exported.nexthop = (
                self.local_addr
                if self.local_addr is not None
                else IPv4Address(self.daemon.router_id)
            )
            exported.local_pref = 100
        elif self.nexthop_self:
            exported.nexthop = IPv4Address(self.daemon.router_id)
        self._pending_withdraw.discard(exported.prefix.key)
        self._pending_announce[exported.prefix.key] = exported
        self._schedule_flush()

    def withdraw(self, pfx: Prefix) -> None:
        if pfx.key in self.advertised or pfx.key in self._pending_announce:
            self._pending_announce.pop(pfx.key, None)
            self._pending_withdraw.add(pfx.key)
            self._schedule_flush()

    def _schedule_flush(self) -> None:
        if self._mrai_timer is not None:
            return
        self._mrai_timer = self.sim.at(0.0, self._flush)

    def _flush(self) -> None:
        self._mrai_timer = None
        if self.state != ESTABLISHED:
            return
        if not self._pending_announce and not self._pending_withdraw:
            return
        announce = list(self._pending_announce.values())
        withdraw = [Prefix(k[0], k[1]) for k in self._pending_withdraw]
        for route in announce:
            self.advertised[route.prefix.key] = route
        for pfx in withdraw:
            self.advertised.pop(pfx.key, None)
        self._pending_announce.clear()
        self._pending_withdraw.clear()
        self.updates_sent += 1
        self.routes_announced += len(announce)
        self.routes_withdrawn += len(withdraw)
        self.transport.send(Update(announce, withdraw))
        # MRAI: no further update to this peer until the interval ends.
        self._mrai_timer = self.sim.at(self.mrai, self._mrai_expired)

    def _mrai_expired(self) -> None:
        self._mrai_timer = None
        if self._pending_announce or self._pending_withdraw:
            self._schedule_flush()


# ----------------------------------------------------------------------
# Daemon
# ----------------------------------------------------------------------
class BGPDaemon:
    """One BGP speaker: sessions, Loc-RIB, decision process."""

    def __init__(
        self,
        sim: Simulator,
        asn: int,
        router_id: Union[int, str, IPv4Address],
        rib: Optional[RIB] = None,
        name: str = "",
        resolve_nexthops: bool = False,
    ):
        self.sim = sim
        self.asn = asn
        self.router_id = int(ip(router_id))
        self.rib = rib
        self.name = name or f"bgp-as{asn}-{IPv4Address(self.router_id)}"
        self.sessions: List[BGPSession] = []
        self.originated: Dict[Tuple[int, int], BGPRoute] = {}
        self.loc_rib: Dict[Tuple[int, int], Tuple[BGPRoute, Optional[BGPSession]]] = {}
        # Recursive next-hop resolution: before installing a BGP route,
        # look its next hop up in the IGP/connected portion of the RIB
        # and install the *resolved* (nexthop, ifname); unresolvable
        # routes stay out of the FIB. IGP changes trigger re-resolution.
        self.resolve_nexthops = resolve_nexthops
        self._reresolve_pending = False
        if resolve_nexthops and rib is not None:
            rib.on_change(self._igp_changed)
        sim.metrics.gauge(
            "bgp.loc_rib_routes", fn=lambda: float(len(self.loc_rib)), daemon=self.name
        )

    # ------------------------------------------------------------------
    def add_session(self, transport: DirectTransport, peer_asn: int, **kwargs) -> BGPSession:
        session = BGPSession(self, transport, peer_asn, **kwargs)
        self.sessions.append(session)
        return session

    def originate(
        self,
        pfx: Union[str, Prefix],
        nexthop: Optional[Union[str, IPv4Address]] = None,
        local_pref: int = 100,
    ) -> None:
        """Announce a locally originated prefix."""
        route = BGPRoute(
            prefix(pfx),
            as_path=(),
            nexthop=nexthop if nexthop is not None else IPv4Address(self.router_id),
            local_pref=local_pref,
            origin=ORIGIN_IGP,
        )
        self.originated[route.prefix.key] = route
        self._route_changed(route.prefix)

    def withdraw_origin(self, pfx: Union[str, Prefix]) -> None:
        pfx = prefix(pfx)
        if self.originated.pop(pfx.key, None) is not None:
            self._route_changed(pfx)

    # ------------------------------------------------------------------
    # Decision process
    # ------------------------------------------------------------------
    def _candidates(self, key: Tuple[int, int]) -> List[Tuple[BGPRoute, Optional[BGPSession]]]:
        result: List[Tuple[BGPRoute, Optional[BGPSession]]] = []
        if key in self.originated:
            result.append((self.originated[key], None))
        for session in self.sessions:
            route = session.adj_rib_in.get(key)
            if route is not None:
                result.append((route, session))
        return result

    def _prefer(self, item: Tuple[BGPRoute, Optional[BGPSession]]):
        route, session = item
        ebgp_rank = 0 if session is None else (1 if session.is_ebgp else 2)
        peer_id = session.peer_router_id if session is not None else 0
        return (
            -route.local_pref,
            len(route.as_path),
            route.origin,
            route.med,
            ebgp_rank,
            peer_id,
        )

    def _route_changed(self, pfx: Prefix) -> None:
        key = pfx.key
        candidates = self._candidates(key)
        old = self.loc_rib.get(key)
        new = min(candidates, key=self._prefer) if candidates else None
        if old is not None and new is not None and old[0] is new[0]:
            return
        if new is None:
            self.loc_rib.pop(key, None)
            if self.rib is not None:
                self.rib.withdraw(pfx, "bgp")
            for session in self.sessions:
                session.withdraw(pfx)
            return
        self.loc_rib[key] = new
        route, learned_from = new
        if self.rib is not None:
            if learned_from is not None:
                self._install(pfx, route, learned_from)
            else:
                # Locally originated best: the origin covers the prefix
                # itself (static/IGP), so drop any BGP-learned entry.
                self.rib.withdraw(pfx, "bgp")
        # Re-advertise to every session except the one we learned from;
        # iBGP routes are not reflected to other iBGP peers. A session
        # the new best is *not* advertisable to must see a withdraw
        # instead — otherwise a previously announced route (say a local
        # origination that just lost to an iBGP-learned path) would
        # linger in the peer's Adj-RIB-In forever.
        for session in self.sessions:
            if session is learned_from or (
                learned_from is not None
                and not learned_from.is_ebgp
                and not session.is_ebgp
            ):
                session.withdraw(pfx)
                continue
            session.advertise(route)

    # ------------------------------------------------------------------
    # RIB installation with optional recursive next-hop resolution
    # ------------------------------------------------------------------
    def _install(self, pfx: Prefix, route: BGPRoute, learned_from: BGPSession) -> None:
        distance = AdminDistance.EBGP if learned_from.is_ebgp else AdminDistance.IBGP
        if not self.resolve_nexthops:
            self.rib.update(
                RibRoute(pfx, route.nexthop, "bgp", "bgp", distance, len(route.as_path))
            )
            return
        resolved = self._resolve(route.nexthop)
        if resolved is None:
            self.rib.withdraw(pfx, "bgp")
            return
        nexthop, ifname = resolved
        self.rib.update(
            RibRoute(pfx, nexthop, ifname, "bgp", distance, len(route.as_path))
        )

    def _resolve(self, bgp_nexthop: IPv4Address) -> Optional[Tuple[IPv4Address, str]]:
        """Resolve a BGP next hop against the IGP/connected RIB entries
        (one recursion level, as XORP's rib does for BGP)."""
        found = self.rib.lookup(bgp_nexthop)
        if found is None or found.protocol == "bgp":
            return None
        if found.nexthop is None:
            # Directly connected subnet: forward straight to the BGP
            # next hop out of that interface.
            return bgp_nexthop, found.ifname
        return found.nexthop, found.ifname

    def _igp_changed(self, pfx: Prefix, best) -> None:
        # Ignore churn we caused ourselves; IGP/connected moves schedule
        # one debounced re-resolution pass.
        if best is not None and best.protocol == "bgp":
            return
        if self._reresolve_pending:
            return
        self._reresolve_pending = True
        self.sim.call_soon(self._reresolve)

    def _reresolve(self) -> None:
        self._reresolve_pending = False
        for key in sorted(self.loc_rib):
            route, learned_from = self.loc_rib[key]
            if learned_from is None:
                continue
            self._install(Prefix(key[0], key[1]), route, learned_from)

    # ------------------------------------------------------------------
    # Session lifecycle hooks
    # ------------------------------------------------------------------
    def _session_established(self, session: BGPSession) -> None:
        for key, (route, learned_from) in list(self.loc_rib.items()):
            if session is learned_from:
                continue
            if (
                learned_from is not None
                and not learned_from.is_ebgp
                and not session.is_ebgp
            ):
                continue
            session.advertise(route)

    def _session_down(self, session: BGPSession, learned: List[BGPRoute]) -> None:
        for route in learned:
            self._route_changed(route.prefix)

    def best(self, pfx: Union[str, Prefix]) -> Optional[BGPRoute]:
        found = self.loc_rib.get(prefix(pfx).key)
        return found[0] if found is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BGPDaemon {self.name} sessions={len(self.sessions)} routes={len(self.loc_rib)}>"
