"""The RIB: multi-protocol route arbitration.

Each protocol daemon offers candidate routes; the RIB picks a winner
per prefix (lowest administrative distance, then lowest metric, then
protocol registration order for determinism) and pushes the choice
through the FEA to the data plane. This is XORP's rib process in
miniature: it is also where route *redistribution* hooks live (e.g. BGP
resolving its next hops against IGP routes).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.net.addr import IPv4Address, Prefix, prefix
from repro.net.trie import RadixTrie
from repro.obs.metrics import NULL_METRIC
from repro.routing.platform import FEA

#: Election outcomes, in the order their counters are registered.
_CHURN_OPS = ("add", "replace", "withdraw")


class AdminDistance:
    """Conventional administrative distances."""

    CONNECTED = 0
    STATIC = 1
    EBGP = 20
    OSPF = 110
    RIP = 120
    IBGP = 200


class RibRoute:
    """One candidate route offered by a protocol."""

    __slots__ = ("prefix", "nexthop", "ifname", "protocol", "distance", "metric")

    def __init__(
        self,
        pfx: Union[str, Prefix],
        nexthop: Optional[IPv4Address],
        ifname: str,
        protocol: str,
        distance: int,
        metric: float = 0.0,
    ):
        self.prefix = prefix(pfx)
        self.nexthop = nexthop
        self.ifname = ifname
        self.protocol = protocol
        self.distance = distance
        self.metric = metric

    @property
    def sort_key(self) -> Tuple[int, float]:
        return (self.distance, self.metric)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        via = f" via {self.nexthop}" if self.nexthop else ""
        return (
            f"<RibRoute {self.prefix}{via} dev {self.ifname} "
            f"[{self.protocol} {self.distance}/{self.metric:g}]>"
        )


class RIB:
    """Route arbitration with FEA propagation and change listeners."""

    def __init__(self, fea: FEA, sim=None, name: str = ""):
        self.fea = fea
        self.sim = sim
        self.name = name
        # prefix key -> {protocol: RibRoute}
        self._candidates: Dict[Tuple[int, int], Dict[str, RibRoute]] = {}
        self._winners = RadixTrie()
        self._listeners: List[Callable[[Prefix, Optional[RibRoute]], None]] = []
        self._trace = sim.trace if sim is not None else None
        if sim is not None:
            metrics = sim.metrics
            self._churn = {
                op: metrics.counter("rib.changes", router=name, op=op)
                for op in _CHURN_OPS
            }
            metrics.gauge("rib.routes", fn=lambda: float(len(self._winners)),
                          router=name)
            self._fib_installs = metrics.counter("fib.installs", router=name)
            self._fib_withdraws = metrics.counter("fib.withdraws", router=name)
        else:
            self._churn = {op: NULL_METRIC for op in _CHURN_OPS}
            self._fib_installs = NULL_METRIC
            self._fib_withdraws = NULL_METRIC

    # ------------------------------------------------------------------
    def update(self, route: RibRoute) -> None:
        """Offer (or refresh) a protocol's candidate for a prefix."""
        key = route.prefix.key
        self._candidates.setdefault(key, {})[route.protocol] = route
        self._elect(route.prefix)

    def withdraw(self, pfx: Union[str, Prefix], protocol: str) -> None:
        """Remove a protocol's candidate for a prefix (no-op if absent)."""
        pfx = prefix(pfx)
        candidates = self._candidates.get(pfx.key)
        if not candidates or protocol not in candidates:
            return
        del candidates[protocol]
        if not candidates:
            del self._candidates[pfx.key]
        self._elect(pfx)

    def withdraw_protocol(self, protocol: str) -> None:
        """Remove every candidate a protocol has offered."""
        for key in list(self._candidates):
            candidates = self._candidates[key]
            if protocol in candidates:
                del candidates[protocol]
                pfx = Prefix(key[0], key[1])
                if not candidates:
                    del self._candidates[key]
                self._elect(pfx)

    # ------------------------------------------------------------------
    def _elect(self, pfx: Prefix) -> None:
        candidates = self._candidates.get(pfx.key, {})
        new_best = min(candidates.values(), key=lambda r: r.sort_key) if candidates else None
        old_best = self._winners.get(pfx)
        if _same_route(old_best, new_best):
            # Still notify nothing; the FIB already matches.
            return
        if new_best is None:
            op = "withdraw"
            self._winners.remove(pfx)
            self.fea.withdraw(pfx)
            self._fib_withdraws.inc()
        else:
            op = "add" if old_best is None else "replace"
            self._winners.insert(pfx, new_best)
            self.fea.install(pfx, new_best.nexthop, new_best.ifname)
            self._fib_installs.inc()
        self._churn[op].inc()
        if self._trace is not None and self._trace.wants("rib_change"):
            winner = new_best if new_best is not None else old_best
            self._trace.log(
                "rib_change",
                router=self.name,
                prefix=str(pfx),
                op=op,
                protocol=winner.protocol,
                nexthop=str(new_best.nexthop) if new_best is not None
                and new_best.nexthop is not None else "",
            )
        for listener in self._listeners:
            listener(pfx, new_best)

    # ------------------------------------------------------------------
    def best(self, pfx: Union[str, Prefix]) -> Optional[RibRoute]:
        return self._winners.get(prefix(pfx))

    def lookup(self, addr: Union[str, IPv4Address]) -> Optional[RibRoute]:
        found = self._winners.lookup_entry(addr)
        return found[1] if found is not None else None

    def routes(self) -> List[RibRoute]:
        return [route for _pfx, route in self._winners.items()]

    def on_change(self, listener: Callable[[Prefix, Optional[RibRoute]], None]) -> None:
        self._listeners.append(listener)

    def rebuild_fib(self) -> None:
        """Re-program the FEA from scratch from the current winners.

        The steady-state path applies deltas (`_elect` installs or
        withdraws exactly the prefix that moved); this is the
        full-rebuild reference the differential tests compare that
        delta stream against — after any update sequence, the FIB a
        rebuild produces must be identical to the one the deltas left
        behind.
        """
        self.fea.clear()
        for pfx, route in self._winners.items():
            self.fea.install(pfx, route.nexthop, route.ifname)

    def __len__(self) -> int:
        return len(self._winners)


def _same_route(a: Optional[RibRoute], b: Optional[RibRoute]) -> bool:
    if a is None or b is None:
        return a is b
    return (
        a.nexthop == b.nexthop
        and a.ifname == b.ifname
        and a.protocol == b.protocol
        and a.sort_key == b.sort_key
    )
