"""The platform a router runs on: interfaces, message I/O, and the FEA.

XORP separates protocol logic from the machine it manages: daemons see
interfaces and send packets; route updates flow through the Forwarding
Engine Abstraction to whichever data plane is in use ("supported
forwarding engines include the Linux kernel routing table and the Click
modular software router (which is why we chose XORP for IIAS)",
Section 4.2.2).

Implementations:

* ``VirtualNode`` (in :mod:`repro.core`) — the PL-VINI case: interfaces
  are UML virtual Ethernets over UDP tunnels, the FEA programs the
  Click FIB.
* :class:`LocalPlatform` + :class:`LocalFabric` — an in-memory fabric
  for protocol unit tests: point-to-point wires with configurable
  delay and controllable failures, no Click or CPU model underneath.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.net.addr import IPv4Address, Prefix, ip, prefix
from repro.net.packet import Packet
from repro.sim.engine import Simulator


class RouterInterface:
    """A router-visible interface (point-to-point in this reproduction)."""

    def __init__(
        self,
        name: str,
        address: Union[str, IPv4Address],
        pfx: Union[str, Prefix],
        cost: int = 1,
        peer: Optional[Union[str, IPv4Address]] = None,
    ):
        self.name = name
        self.address = ip(address)
        self.prefix = prefix(pfx)
        self.cost = cost
        self.peer = ip(peer) if peer is not None else None
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RouterInterface {self.name} {self.address}/{self.prefix.plen} cost={self.cost}>"


class FEA:
    """Forwarding Engine Abstraction: the RIB's route sink.

    Subclasses program a concrete data plane. The base class records
    the routes it was given — useful on its own for tests.
    """

    def __init__(self):
        self.routes: Dict[Tuple[int, int], Tuple[Optional[IPv4Address], str]] = {}

    def install(
        self, pfx: Prefix, nexthop: Optional[IPv4Address], ifname: str
    ) -> None:
        self.routes[pfx.key] = (nexthop, ifname)

    def withdraw(self, pfx: Prefix) -> None:
        self.routes.pop(pfx.key, None)

    def clear(self) -> None:
        """Drop every RIB-programmed route (full-rebuild support)."""
        self.routes.clear()

    def __len__(self) -> int:
        return len(self.routes)


class RoutingPlatform:
    """Abstract router platform used by the protocol daemons."""

    def __init__(self, sim: Simulator, name: str, fea: Optional[FEA] = None):
        self.sim = sim
        self.name = name
        self.fea = fea if fea is not None else FEA()
        self.interfaces: Dict[str, RouterInterface] = {}
        self._receivers: List[Callable[[RouterInterface, Packet], None]] = []
        self.rx_msgs = 0
        sim.metrics.counter(
            "routing.rx_msgs", fn=lambda: float(self.rx_msgs), platform=name
        )

    # -- interface management -------------------------------------------
    def add_interface(self, iface: RouterInterface) -> RouterInterface:
        if iface.name in self.interfaces:
            raise ValueError(f"{self.name}: duplicate interface {iface.name!r}")
        self.interfaces[iface.name] = iface
        return iface

    def interface_for(self, address: Union[str, IPv4Address]) -> Optional[RouterInterface]:
        """The interface whose subnet contains ``address``."""
        addr = ip(address)
        for iface in self.interfaces.values():
            if addr in iface.prefix:
                return iface
        return None

    # -- message I/O ------------------------------------------------------
    def send(self, iface: RouterInterface, packet: Packet) -> None:
        raise NotImplementedError

    def register_receiver(
        self, callback: Callable[[RouterInterface, Packet], None]
    ) -> None:
        self._receivers.append(callback)

    def deliver(self, iface: RouterInterface, packet: Packet) -> None:
        self.rx_msgs += 1
        for callback in list(self._receivers):
            callback(iface, packet)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


class _Wire:
    """One direction of a LocalFabric point-to-point wire."""

    def __init__(self, sim: Simulator, delay: float):
        self.sim = sim
        self.delay = delay
        self.up = True
        self.dst_platform: Optional[LocalPlatform] = None
        self.dst_iface: Optional[RouterInterface] = None


class LocalFabric:
    """In-memory wiring between LocalPlatforms for protocol tests."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        # (platform name, iface name) -> _Wire
        self._wires: Dict[Tuple[str, str], _Wire] = {}
        self._links: Dict[frozenset, List[_Wire]] = {}

    def connect(
        self,
        a: "LocalPlatform",
        iface_a: str,
        b: "LocalPlatform",
        iface_b: str,
        delay: float = 0.001,
    ) -> None:
        wire_ab = _Wire(self.sim, delay)
        wire_ab.dst_platform = b
        wire_ab.dst_iface = b.interfaces[iface_b]
        wire_ba = _Wire(self.sim, delay)
        wire_ba.dst_platform = a
        wire_ba.dst_iface = a.interfaces[iface_a]
        self._wires[(a.name, iface_a)] = wire_ab
        self._wires[(b.name, iface_b)] = wire_ba
        self._links[frozenset([(a.name, iface_a), (b.name, iface_b)])] = [
            wire_ab,
            wire_ba,
        ]

    def fail(self, a: "LocalPlatform", iface_a: str) -> None:
        """Fail the link attached to (platform, interface), both ways."""
        self._set_link(a.name, iface_a, up=False)

    def recover(self, a: "LocalPlatform", iface_a: str) -> None:
        self._set_link(a.name, iface_a, up=True)

    def _set_link(self, name: str, iface: str, up: bool) -> None:
        for key, wires in self._links.items():
            if (name, iface) in key:
                for wire in wires:
                    wire.up = up
                return
        raise KeyError(f"no link at {name}:{iface}")

    def transmit(self, platform: "LocalPlatform", iface: RouterInterface, packet: Packet) -> None:
        wire = self._wires.get((platform.name, iface.name))
        if wire is None or not wire.up:
            return
        dst_platform, dst_iface = wire.dst_platform, wire.dst_iface
        self.sim.at(wire.delay, dst_platform.deliver, dst_iface, packet)


class LocalPlatform(RoutingPlatform):
    """A RoutingPlatform wired through a LocalFabric."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fabric: LocalFabric,
        fea: Optional[FEA] = None,
    ):
        super().__init__(sim, name, fea)
        self.fabric = fabric
        self.sent = 0

    def send(self, iface: RouterInterface, packet: Packet) -> None:
        if not iface.up:
            return
        self.sent += 1
        self.fabric.transmit(self, iface, packet)
