"""XORP-style routing suite.

"IIAS uses the XORP open-source routing protocol suite as its control
plane. XORP implements a number of routing protocols, including BGP,
OSPF, RIP..." (Section 4.2.2). This subpackage reproduces that control
plane: protocol daemons (OSPFv2, RIP, BGP-4, static) feeding a RIB that
arbitrates by administrative distance and pushes winning routes through
a Forwarding Engine Abstraction (FEA) into whatever data plane the
router runs on — the Click FIB for IIAS virtual nodes, or a node's
kernel table.

The Section 6.1 BGP multiplexer (sharing one external BGP session among
many experiments) lives in :mod:`repro.routing.bgp_mux`.
"""

from repro.routing.platform import (
    FEA,
    LocalFabric,
    LocalPlatform,
    RouterInterface,
    RoutingPlatform,
)
from repro.routing.rib import RIB, AdminDistance, RibRoute
from repro.routing.ospf import OSPFDaemon
from repro.routing.rip import RIPDaemon
from repro.routing.static import StaticRoutes
from repro.routing.bgp import BGPDaemon, BGPRoute, BGPSession, DirectTransport
from repro.routing.bgp_mux import BGPMultiplexer
from repro.routing.policy import (
    CUSTOMER,
    PEER,
    PROVIDER,
    GaoRexfordPolicy,
    is_valley_free,
)
from repro.routing.xorp import XORPRouter

__all__ = [
    "AdminDistance",
    "BGPDaemon",
    "BGPMultiplexer",
    "BGPRoute",
    "BGPSession",
    "CUSTOMER",
    "DirectTransport",
    "FEA",
    "GaoRexfordPolicy",
    "LocalFabric",
    "LocalPlatform",
    "OSPFDaemon",
    "PEER",
    "PROVIDER",
    "RIB",
    "RIPDaemon",
    "RibRoute",
    "RouterInterface",
    "RoutingPlatform",
    "StaticRoutes",
    "XORPRouter",
    "is_valley_free",
]
