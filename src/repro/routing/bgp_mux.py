"""The BGP multiplexer (Section 6.1).

"We are designing and implementing a multiplexer that manages BGP
sessions with neighboring networks and forwards (and filters) routing
protocol messages between the external speakers and the BGP speakers on
the virtual nodes. Each experiment might have its own portion of a
larger address block that has already been allocated to VINI. The
multiplexer ensures that each virtual node announces only its own
address space and may also impose limits on the rate of BGP update
messages that are propagated from each experiment."

The multiplexer is itself a set of BGP speakers: one session to the
external operational router, and one session per experiment. Toward the
external world all experiments appear behind a single, stable session —
the scaling/management/stability concerns of Section 3.4. Toward each
experiment it enforces:

* **prefix ownership** — announcements outside the experiment's
  delegated sub-block are dropped (and counted);
* **update rate limits** — a token bucket per experiment bounds the
  BGP churn an unstable prototype can leak into the real Internet.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.net.addr import IPv4Address, Prefix, ip, prefix
from repro.routing.bgp import BGPDaemon, BGPRoute, BGPSession, DirectTransport
from repro.sim.engine import Simulator


class _RateLimiter:
    """Token bucket over BGP updates."""

    def __init__(self, sim: Simulator, rate: float, burst: float):
        self.sim = sim
        self.rate = rate  # updates per second
        self.burst = burst
        self.tokens = burst
        self._stamp = sim.now
        self.dropped = 0

    def allow(self) -> bool:
        now = self.sim.now
        self.tokens = min(self.burst, self.tokens + self.rate * (now - self._stamp))
        self._stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        self.dropped += 1
        return False


class _ClientPort:
    """The multiplexer's view of one experiment."""

    def __init__(
        self,
        mux: "BGPMultiplexer",
        name: str,
        session: BGPSession,
        allowed: Prefix,
        limiter: _RateLimiter,
    ):
        self.mux = mux
        self.name = name
        self.session = session
        self.allowed = allowed
        self.limiter = limiter
        self.filtered = 0

    def import_filter(self, route: BGPRoute) -> Optional[BGPRoute]:
        """Applied to announcements *from* the experiment."""
        trace = self.mux.sim.trace
        if route.prefix not in self.allowed:
            self.filtered += 1
            if trace.wants("bgp_mux_filtered"):
                trace.log(
                    "bgp_mux_filtered", client=self.name, prefix=str(route.prefix)
                )
            return None
        if not self.limiter.allow():
            if trace.wants("bgp_mux_ratelimited"):
                trace.log(
                    "bgp_mux_ratelimited", client=self.name, prefix=str(route.prefix)
                )
            return None
        return route


class BGPMultiplexer:
    """Shares one external BGP session among many experiments."""

    def __init__(
        self,
        sim: Simulator,
        asn: int,
        router_id: Union[int, str, IPv4Address],
        vini_block: Union[str, Prefix] = "198.18.0.0/16",
    ):
        self.sim = sim
        self.vini_block = prefix(vini_block)
        self.daemon = BGPDaemon(sim, asn, router_id, rib=None, name="bgp-mux")
        self.clients: Dict[str, _ClientPort] = {}
        self.external_session: Optional[BGPSession] = None
        sim.metrics.gauge(
            "bgp.mux_clients", fn=lambda: float(len(self.clients))
        )

    # ------------------------------------------------------------------
    def attach_external(
        self,
        transport: DirectTransport,
        peer_asn: int,
        mrai: float = 5.0,
    ) -> BGPSession:
        """Open the single session to the external operational router."""
        if self.external_session is not None:
            raise RuntimeError("external session already attached")
        self.external_session = self.daemon.add_session(
            transport, peer_asn, name="external", mrai=mrai
        )
        self.external_session.start()
        return self.external_session

    def add_client(
        self,
        name: str,
        transport: DirectTransport,
        client_asn: int,
        allowed: Union[str, Prefix],
        max_update_rate: float = 1.0,
        burst: float = 5.0,
    ) -> BGPSession:
        """Register an experiment behind the multiplexer.

        ``allowed`` must be a sub-block of the VINI allocation; the
        client may only announce prefixes inside it.
        """
        if name in self.clients:
            raise ValueError(f"duplicate mux client {name!r}")
        allowed = prefix(allowed)
        if allowed not in self.vini_block:
            raise ValueError(
                f"client block {allowed} is outside the VINI allocation {self.vini_block}"
            )
        for other in self.clients.values():
            if other.allowed.overlaps(allowed):
                raise ValueError(
                    f"client block {allowed} overlaps {other.name}'s {other.allowed}"
                )
        limiter = _RateLimiter(self.sim, max_update_rate, burst)
        port = _ClientPort(self, name, None, allowed, limiter)  # type: ignore[arg-type]
        self.sim.metrics.counter(
            "bgp.mux_filtered", fn=lambda: float(port.filtered), client=name
        )
        self.sim.metrics.counter(
            "bgp.mux_ratelimited", fn=lambda: float(limiter.dropped), client=name
        )
        session = self.daemon.add_session(
            transport,
            client_asn,
            name=name,
            import_policy=port.import_filter,
            mrai=0.5,
        )
        port.session = session
        self.clients[name] = port
        session.start()
        return session

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "filtered": port.filtered,
                "ratelimited": port.limiter.dropped,
            }
            for name, port in self.clients.items()
        }
