"""The XORP router: platform + RIB + protocol daemons in one box.

"Each XORP instance then configures a forwarding table (FIB)
implemented in a Click process running outside of UML" (Section 4.2).
:class:`XORPRouter` is that instance: it owns the RIB, installs
connected routes for the platform's interfaces, and hosts whichever
daemons the experiment configures (OSPF, RIP, BGP, static). The
platform's FEA receives the winning routes.
"""

from __future__ import annotations

from typing import Optional

from repro.routing.bgp import BGPDaemon
from repro.routing.ospf import OSPFDaemon
from repro.routing.platform import RoutingPlatform
from repro.routing.rib import AdminDistance, RIB, RibRoute
from repro.routing.rip import RIPDaemon
from repro.routing.static import StaticRoutes


class XORPRouter:
    """One routing-software instance managing one forwarding engine."""

    def __init__(self, platform: RoutingPlatform):
        self.platform = platform
        self.sim = platform.sim
        self.rib = RIB(platform.fea, sim=platform.sim, name=platform.name)
        self.ospf: Optional[OSPFDaemon] = None
        self.rip: Optional[RIPDaemon] = None
        self.bgp: Optional[BGPDaemon] = None
        self.static = StaticRoutes(platform, self.rib)
        self._started = False

    # ------------------------------------------------------------------
    def configure_ospf(self, router_id, **kwargs) -> OSPFDaemon:
        if self.ospf is not None:
            raise RuntimeError("OSPF already configured")
        self.ospf = OSPFDaemon(self.platform, self.rib, router_id, **kwargs)
        return self.ospf

    def configure_rip(self, **kwargs) -> RIPDaemon:
        if self.rip is not None:
            raise RuntimeError("RIP already configured")
        self.rip = RIPDaemon(self.platform, self.rib, **kwargs)
        return self.rip

    def configure_bgp(self, asn: int, router_id, **kwargs) -> BGPDaemon:
        if self.bgp is not None:
            raise RuntimeError("BGP already configured")
        self.bgp = BGPDaemon(self.sim, asn, router_id, rib=self.rib, **kwargs)
        return self.bgp

    # ------------------------------------------------------------------
    def refresh_connected(self) -> None:
        """(Re)install connected routes for every platform interface."""
        for iface in self.platform.interfaces.values():
            self.rib.update(
                RibRoute(
                    iface.prefix,
                    None,
                    iface.name,
                    "connected",
                    AdminDistance.CONNECTED,
                )
            )

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.refresh_connected()
        if self.ospf is not None:
            self.ospf.start()
        if self.rip is not None:
            self.rip.start()
        if self.bgp is not None:
            for session in self.bgp.sessions:
                session.start()

    def stop(self) -> None:
        self._started = False
        if self.ospf is not None:
            self.ospf.stop()
        if self.rip is not None:
            self.rip.stop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        daemons = [
            name
            for name, daemon in (("ospf", self.ospf), ("rip", self.rip), ("bgp", self.bgp))
            if daemon is not None
        ]
        return f"<XORPRouter {self.platform.name} daemons={daemons}>"
