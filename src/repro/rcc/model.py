"""The parsed configuration model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.addr import IPv4Address, Prefix


@dataclass
class InterfaceConfig:
    """One ``interface`` block."""

    name: str
    address: Optional[IPv4Address] = None
    prefix: Optional[Prefix] = None
    ospf_cost: int = 1
    hello_interval: Optional[float] = None
    dead_interval: Optional[float] = None
    shutdown: bool = False


@dataclass
class OSPFConfig:
    """The ``router ospf`` block."""

    process_id: int = 1
    router_id: Optional[IPv4Address] = None
    networks: List[Tuple[Prefix, int]] = field(default_factory=list)  # (prefix, area)
    passive_interfaces: List[str] = field(default_factory=list)

    def covers(self, address: Optional[IPv4Address]) -> bool:
        if address is None:
            return False
        return any(address in pfx for pfx, _area in self.networks)


@dataclass
class RouterConfig:
    """Everything parsed from one router's configuration file."""

    hostname: str = ""
    interfaces: Dict[str, InterfaceConfig] = field(default_factory=dict)
    ospf: Optional[OSPFConfig] = None

    def ospf_interfaces(self) -> List[InterfaceConfig]:
        if self.ospf is None:
            return []
        return [
            iface
            for iface in self.interfaces.values()
            if not iface.shutdown
            and iface.name not in self.ospf.passive_interfaces
            and self.ospf.covers(iface.address)
        ]


@dataclass
class LinkModel:
    """A link inferred from two interfaces sharing a subnet."""

    router_a: str
    iface_a: InterfaceConfig
    router_b: str
    iface_b: InterfaceConfig
    subnet: Prefix

    @property
    def cost(self) -> int:
        # Asymmetric costs are legal in OSPF; the virtual-link model is
        # symmetric, so take the maximum (a fault check flags mismatch).
        return max(self.iface_a.ospf_cost, self.iface_b.ospf_cost)


@dataclass
class NetworkModel:
    """The whole parsed network."""

    routers: Dict[str, RouterConfig] = field(default_factory=dict)
    links: List[LinkModel] = field(default_factory=list)

    def infer_links(self) -> None:
        """Match interface subnets across routers into links."""
        self.links.clear()
        seen: Dict[Tuple[int, int], Tuple[str, InterfaceConfig]] = {}
        for name in sorted(self.routers):
            router = self.routers[name]
            for iface in router.interfaces.values():
                if iface.prefix is None or iface.shutdown:
                    continue
                key = iface.prefix.key
                if key in seen:
                    other_name, other_iface = seen[key]
                    if other_name != name:
                        self.links.append(
                            LinkModel(other_name, other_iface, name, iface, iface.prefix)
                        )
                else:
                    seen[key] = (name, iface)

    def link_between(self, a: str, b: str) -> Optional[LinkModel]:
        for link in self.links:
            if {link.router_a, link.router_b} == {a, b}:
                return link
        return None
