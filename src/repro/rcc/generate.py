"""Generate a VINI experiment from parsed router configurations.

This is the Section 6.2 pipeline: "PL-VINI's current machinery for
mirroring the Abilene topology automatically generates the necessary
XORP and Click configurations (and determines the appropriate
co-located nodes at Abilene PoPs) for a VINI experiment from the
actual Abilene routing configuration."
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.experiment import Experiment
from repro.core.infrastructure import VINI
from repro.rcc.checks import check_model
from repro.rcc.model import NetworkModel


def experiment_from_model(
    model: NetworkModel,
    vini: VINI,
    name: str = "mirror",
    placement: Optional[Dict[str, str]] = None,
    cpu_reservation: float = 0.25,
    realtime: bool = True,
    strict: bool = True,
    hello_interval: Optional[float] = None,
    dead_interval: Optional[float] = None,
) -> Experiment:
    """Build an experiment mirroring the parsed network.

    ``placement`` maps router hostnames to physical node names (default:
    same name — the co-located PlanetLab node at each PoP). ``strict``
    refuses to build from a configuration with error-level faults.
    Hello/dead intervals come from the configuration when uniform, or
    from the keyword overrides.
    """
    faults = check_model(model)
    errors = [fault for fault in faults if fault.severity == "error"]
    if strict and errors:
        detail = "; ".join(str(fault) for fault in errors)
        raise ValueError(f"configuration has faults: {detail}")
    placement = placement or {}
    exp = Experiment(
        vini, name, cpu_reservation=cpu_reservation, realtime=realtime
    )
    for hostname in sorted(model.routers):
        phys_name = placement.get(hostname, hostname)
        exp.add_node(hostname, phys_name)
    for link in model.links:
        exp.connect(link.router_a, link.router_b, cost=link.cost)
    hello, dead = _timers(model, hello_interval, dead_interval)
    exp.configure_ospf(hello_interval=hello, dead_interval=dead)
    return exp


def _timers(
    model: NetworkModel,
    hello_override: Optional[float],
    dead_override: Optional[float],
) -> tuple:
    hellos = {
        iface.hello_interval
        for router in model.routers.values()
        for iface in router.interfaces.values()
        if iface.hello_interval is not None
    }
    deads = {
        iface.dead_interval
        for router in model.routers.values()
        for iface in router.interfaces.values()
        if iface.dead_interval is not None
    }
    hello = hello_override if hello_override is not None else (
        hellos.pop() if len(hellos) == 1 else 10.0
    )
    dead = dead_override if dead_override is not None else (
        deads.pop() if len(deads) == 1 else 4 * hello
    )
    return hello, dead
