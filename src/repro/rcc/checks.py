"""Static configuration fault checks, in the spirit of rcc.

rcc "detects faults by checking constraints that are based on a
high-level correctness specification". These are the checks that
matter before mirroring a network into VINI: dangling subnets, cost
and timer mismatches across a link, OSPF-disabled backbone
interfaces, duplicate router ids and addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.rcc.model import NetworkModel


@dataclass
class Fault:
    """One detected configuration fault."""

    severity: str  # "error" | "warning"
    router: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.router}: {self.message}"


def check_model(model: NetworkModel) -> List[Fault]:
    """Run all checks; returns the fault list (empty = clean)."""
    faults: List[Fault] = []
    faults.extend(_check_duplicate_addresses(model))
    faults.extend(_check_duplicate_router_ids(model))
    faults.extend(_check_dangling_subnets(model))
    faults.extend(_check_link_parameter_agreement(model))
    faults.extend(_check_ospf_coverage(model))
    return faults


def _check_duplicate_addresses(model: NetworkModel) -> List[Fault]:
    faults = []
    seen: Dict[int, str] = {}
    for name, router in sorted(model.routers.items()):
        for iface in router.interfaces.values():
            if iface.address is None:
                continue
            key = int(iface.address)
            if key in seen and seen[key] != name:
                faults.append(
                    Fault(
                        "error",
                        name,
                        f"address {iface.address} also configured on {seen[key]}",
                    )
                )
            seen[key] = name
    return faults


def _check_duplicate_router_ids(model: NetworkModel) -> List[Fault]:
    faults = []
    seen: Dict[int, str] = {}
    for name, router in sorted(model.routers.items()):
        if router.ospf is None or router.ospf.router_id is None:
            continue
        key = int(router.ospf.router_id)
        if key in seen:
            faults.append(
                Fault(
                    "error",
                    name,
                    f"router-id {router.ospf.router_id} also used by {seen[key]}",
                )
            )
        seen[key] = name
    return faults


def _check_dangling_subnets(model: NetworkModel) -> List[Fault]:
    """An interface subnet with no counterpart is a dead link."""
    faults = []
    linked = set()
    for link in model.links:
        linked.add((link.router_a, link.iface_a.name))
        linked.add((link.router_b, link.iface_b.name))
    for name, router in sorted(model.routers.items()):
        for iface in router.interfaces.values():
            if iface.prefix is None or iface.shutdown:
                continue
            if iface.prefix.plen >= 31 or iface.prefix.plen == 30:
                if (name, iface.name) not in linked:
                    faults.append(
                        Fault(
                            "warning",
                            name,
                            f"{iface.name} ({iface.prefix}) has no neighbor",
                        )
                    )
    return faults


def _check_link_parameter_agreement(model: NetworkModel) -> List[Fault]:
    faults = []
    for link in model.links:
        if link.iface_a.ospf_cost != link.iface_b.ospf_cost:
            faults.append(
                Fault(
                    "warning",
                    link.router_a,
                    f"OSPF cost mismatch with {link.router_b} on {link.subnet}: "
                    f"{link.iface_a.ospf_cost} != {link.iface_b.ospf_cost}",
                )
            )
        for attr in ("hello_interval", "dead_interval"):
            a_val = getattr(link.iface_a, attr)
            b_val = getattr(link.iface_b, attr)
            if a_val != b_val:
                faults.append(
                    Fault(
                        "error",
                        link.router_a,
                        f"OSPF {attr.replace('_', '-')} mismatch with "
                        f"{link.router_b} on {link.subnet}: {a_val} != {b_val} "
                        "(adjacency will never form)",
                    )
                )
    return faults


def _check_ospf_coverage(model: NetworkModel) -> List[Fault]:
    """A backbone interface not covered by a network statement is
    invisible to the IGP."""
    faults = []
    for link in model.links:
        for router_name, iface in (
            (link.router_a, link.iface_a),
            (link.router_b, link.iface_b),
        ):
            router = model.routers[router_name]
            if router.ospf is None:
                faults.append(
                    Fault("error", router_name, "no OSPF process configured")
                )
            elif not router.ospf.covers(iface.address):
                faults.append(
                    Fault(
                        "error",
                        router_name,
                        f"{iface.name} ({iface.address}) not covered by any "
                        "OSPF network statement",
                    )
                )
    return faults
