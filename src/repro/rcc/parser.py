"""IOS-style configuration parser (the subset VINI experiments need)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.addr import IPv4Address, Prefix, ip
from repro.rcc.model import InterfaceConfig, NetworkModel, OSPFConfig, RouterConfig


class ConfigSyntaxError(Exception):
    """A line the parser could not understand."""

    def __init__(self, line_no: int, line: str, reason: str):
        super().__init__(f"line {line_no}: {reason}: {line!r}")
        self.line_no = line_no
        self.line = line


def _netmask_to_plen(mask_text: str) -> int:
    mask = int(ip(mask_text))
    plen = 0
    seen_zero = False
    for bit in range(31, -1, -1):
        if mask >> bit & 1:
            if seen_zero:
                raise ValueError(f"non-contiguous netmask {mask_text}")
            plen += 1
        else:
            seen_zero = True
    return plen


def _wildcard_to_plen(wildcard_text: str) -> int:
    wildcard = int(ip(wildcard_text))
    return _netmask_to_plen(str(IPv4Address(~wildcard & 0xFFFFFFFF)))


def parse_config(text: str) -> RouterConfig:
    """Parse one router's configuration."""
    router = RouterConfig()
    current_iface: Optional[InterfaceConfig] = None
    in_ospf = False
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        stripped = line.strip()
        if not stripped or stripped.startswith(("!", "#")):
            current_iface = None if stripped == "!" else current_iface
            if stripped == "!":
                in_ospf = False
            continue
        indented = line[:1] in (" ", "\t")
        words = stripped.split()
        if not indented:
            current_iface = None
            in_ospf = False
            if words[0] == "hostname" and len(words) == 2:
                router.hostname = words[1]
            elif words[0] == "interface" and len(words) == 2:
                current_iface = InterfaceConfig(words[1])
                router.interfaces[words[1]] = current_iface
            elif words[:2] == ["router", "ospf"] and len(words) == 3:
                router.ospf = OSPFConfig(process_id=int(words[2]))
                in_ospf = True
            else:
                raise ConfigSyntaxError(line_no, raw, "unknown top-level statement")
            continue
        # Indented: belongs to the open block.
        if current_iface is not None:
            _parse_interface_line(router, current_iface, words, line_no, raw)
        elif in_ospf and router.ospf is not None:
            _parse_ospf_line(router.ospf, words, line_no, raw)
        else:
            raise ConfigSyntaxError(line_no, raw, "statement outside any block")
    return router


def _parse_interface_line(
    router: RouterConfig,
    iface: InterfaceConfig,
    words: List[str],
    line_no: int,
    raw: str,
) -> None:
    if words[:2] == ["ip", "address"] and len(words) == 4:
        iface.address = ip(words[2])
        iface.prefix = Prefix(iface.address, _netmask_to_plen(words[3]))
    elif words[:3] == ["ip", "ospf", "cost"] and len(words) == 4:
        iface.ospf_cost = int(words[3])
    elif words[:3] == ["ip", "ospf", "hello-interval"] and len(words) == 4:
        iface.hello_interval = float(words[3])
    elif words[:3] == ["ip", "ospf", "dead-interval"] and len(words) == 4:
        iface.dead_interval = float(words[3])
    elif words == ["shutdown"]:
        iface.shutdown = True
    elif words[:1] == ["description"]:
        pass  # free text
    else:
        raise ConfigSyntaxError(line_no, raw, "unknown interface statement")


def _parse_ospf_line(
    ospf: OSPFConfig, words: List[str], line_no: int, raw: str
) -> None:
    if words[0] == "router-id" and len(words) == 2:
        ospf.router_id = ip(words[1])
    elif words[0] == "network" and len(words) == 5 and words[3] == "area":
        plen = _wildcard_to_plen(words[2])
        area = int(words[4].split(".")[-1]) if "." in words[4] else int(words[4])
        ospf.networks.append((Prefix(words[1], plen), area))
    elif words[0] == "passive-interface" and len(words) == 2:
        ospf.passive_interfaces.append(words[1])
    else:
        raise ConfigSyntaxError(line_no, raw, "unknown ospf statement")


def parse_configs(texts: List[str]) -> NetworkModel:
    """Parse many routers and infer the topology."""
    model = NetworkModel()
    for text in texts:
        router = parse_config(text)
        if not router.hostname:
            raise ValueError("router configuration missing a hostname")
        if router.hostname in model.routers:
            raise ValueError(f"duplicate hostname {router.hostname!r}")
        model.routers[router.hostname] = router
    model.infer_links()
    return model
