"""rcc: router configuration parsing driving experiment generation.

The paper drives its Section 5.2 experiment "as extracted from the
configuration state of the eleven Abilene routers", reusing the
configuration-parsing machinery of rcc [Feamster & Balakrishnan,
NSDI'05]. This subpackage reproduces that pipeline: parse an IOS-style
configuration per router, infer the topology by matching interface
subnets, check it for faults (the static-analysis spirit of rcc), and
generate a ready-to-run VINI experiment that mirrors the parsed
network — topology, OSPF costs, and timers.
"""

from repro.rcc.model import InterfaceConfig, NetworkModel, OSPFConfig, RouterConfig
from repro.rcc.parser import parse_config, parse_configs
from repro.rcc.checks import check_model
from repro.rcc.generate import experiment_from_model
from repro.rcc.samples import abilene_router_configs

__all__ = [
    "InterfaceConfig",
    "NetworkModel",
    "OSPFConfig",
    "RouterConfig",
    "abilene_router_configs",
    "check_model",
    "experiment_from_model",
    "parse_config",
    "parse_configs",
]
