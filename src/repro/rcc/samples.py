"""Sample router configurations: the eleven Abilene routers.

Generates the IOS-style configuration files the Section 5.2 experiment
is "extracted from": one per PoP, with interfaces on shared /31s per
backbone link, latency-derived OSPF costs, and the experiment's
5 s / 10 s hello/dead timers. `parse_configs` on these round-trips to
exactly the `repro.topologies.abilene` topology.
"""

from __future__ import annotations

from typing import Dict, List

from repro.net.addr import Prefix
from repro.topologies.abilene import ABILENE_LINKS, ABILENE_POPS, ospf_weight


def abilene_router_configs(
    hello_interval: int = 5,
    dead_interval: int = 10,
    backbone_block: str = "198.32.154.0/24",
) -> List[str]:
    """IOS-style configuration text for each Abilene router."""
    subnets = Prefix.parse(backbone_block).subnets(31)
    # Deterministic per-link addressing, in ABILENE_LINKS order.
    link_addrs = {}
    for (a, b), _delay in ABILENE_LINKS.items():
        subnet = next(subnets)
        hosts = list(subnet.hosts())
        link_addrs[(a, b)] = (subnet, hosts[0], hosts[1])
    configs = []
    for index, pop in enumerate(ABILENE_POPS):
        lines = [f"hostname {pop}", "!"]
        iface_index = 0
        for (a, b), delay in ABILENE_LINKS.items():
            if pop not in (a, b):
                continue
            subnet, addr_a, addr_b = link_addrs[(a, b)]
            addr = addr_a if pop == a else addr_b
            other = b if pop == a else a
            lines.append(f"interface ge-0/{iface_index}/0")
            lines.append(f" description to {other}")
            lines.append(f" ip address {addr} {subnet.netmask}")
            lines.append(f" ip ospf cost {ospf_weight(delay)}")
            lines.append(f" ip ospf hello-interval {hello_interval}")
            lines.append(f" ip ospf dead-interval {dead_interval}")
            lines.append("!")
            iface_index += 1
        lines.append("router ospf 1")
        lines.append(f" router-id 10.255.0.{index + 1}")
        network = Prefix.parse(backbone_block)
        wildcard = str(_wildcard(network))
        lines.append(f" network {network.network} {wildcard} area 0")
        lines.append("!")
        configs.append("\n".join(lines) + "\n")
    return configs


def _wildcard(pfx: Prefix):
    from repro.net.addr import IPv4Address

    return IPv4Address(~pfx.mask & 0xFFFFFFFF)
