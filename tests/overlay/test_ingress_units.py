"""Unit-level checks on the OpenVPN ingress mechanics."""

import pytest

from repro.core import VINI, Experiment
from repro.net.packet import IPv4Header, OpaquePayload, Packet, PROTO_UDP, UDPHeader
from repro.overlay import IIAS
from repro.overlay.ingress import VPN_OVERHEAD


@pytest.fixture
def world():
    vini = VINI(seed=66)
    vini.add_node("pop")
    vini.add_node("host")
    vini.connect("host", "pop", delay=0.002)
    vini.install_underlay_routes()
    exp = Experiment(vini, "iias", realtime=True)
    exp.add_node("v", "pop")
    exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
    iias = IIAS(exp)
    server = iias.add_openvpn_server("v")
    iias.start()
    vini.run(until=5.0)
    return vini, exp, iias, server


def test_vpn_frames_carry_real_overhead(world):
    """The encapsulated datagram is inner + VPN framing on the wire."""
    vini, exp, iias, server = world
    client = iias.opt_in(vini.nodes["host"], "v")
    vini.run(until=6.0)
    link = vini.nodes["host"].interfaces["eth0"].link
    bytes_before = link.stats()["tx_bytes"]
    inner = Packet(
        headers=[IPv4Header(server.address_of(client), exp.network.nodes["v"].tap_addr, PROTO_UDP),
                 UDPHeader(1000, 2000)],
        payload=OpaquePayload(100),
    )
    expected_wire = inner.wire_len + VPN_OVERHEAD
    client.send(inner)
    vini.run(until=7.0)
    assert link.stats()["tx_bytes"] - bytes_before == expected_wire


def test_leases_are_deterministic_per_connect_order(world):
    vini, exp, iias, server = world
    c1 = iias.opt_in(vini.nodes["host"], "v")
    vini.run(until=6.0)
    first = server.address_of(c1)
    assert first == next(iter(server.client_pool.hosts()))


def test_lease_trace_recorded(world):
    vini, exp, iias, server = world
    iias.opt_in(vini.nodes["host"], "v")
    vini.run(until=6.0)
    assert vini.sim.trace.count("vpn_lease", server="v") == 1


def test_client_pool_advertised_into_ospf(world):
    vini, exp, iias, server = world
    ospf = exp.network.nodes["v"].xorp.ospf
    assert any(p == server.client_pool for p, _cost in ospf.stub_prefixes)
