"""Test package."""
