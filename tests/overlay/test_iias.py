"""The life of a packet (Figure 2): opt-in ingress, overlay, NAPT egress.

Client host --OpenVPN--> v0 ==overlay== v2 --NAPT--> "CNN" server, and
the response all the way back.
"""

import pytest

from repro.core import VINI, Experiment
from repro.net.addr import ip
from repro.net.packet import IPv4Header, OpaquePayload, Packet, PROTO_UDP, UDPHeader
from repro.overlay import IIAS, click_config, xorp_config


@pytest.fixture
def world():
    vini = VINI(seed=55)
    for name in ("p0", "p1", "p2"):
        vini.add_node(name)
    vini.connect("p0", "p1", delay=0.004)
    vini.connect("p1", "p2", delay=0.004)
    # End hosts: the opt-in client near p0, the web server beyond p2.
    vini.add_node("client")
    vini.add_node("cnn")
    vini.connect("client", "p0", delay=0.002)
    vini.connect("cnn", "p2", delay=0.002)
    vini.install_underlay_routes()
    exp = Experiment(vini, "iias", realtime=True)
    for i in range(3):
        exp.add_node(f"v{i}", f"p{i}")
    exp.connect("v0", "v1")
    exp.connect("v1", "v2")
    exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
    iias = IIAS(exp)
    server = iias.add_openvpn_server("v0")
    napt = iias.configure_egress("v2")
    iias.start()
    vini.run(until=20.0)  # let OSPF converge
    return vini, exp, iias, server, napt


def make_web_request(src, dst, sport=5555, dport=80, size=200):
    return Packet(
        headers=[IPv4Header(src, dst, PROTO_UDP), UDPHeader(sport, dport)],
        payload=OpaquePayload(size, tag="request"),
    )


def run_echo_server(vini, node_name="cnn", port=80):
    """A UDP echo service standing in for www.cnn.com."""
    node = vini.nodes[node_name]
    from repro.phys.process import Process

    proc = Process(node, "httpd")
    sock = node.udp_socket(proc, port=port)
    log = []

    def respond(packet, src, sport):
        log.append((str(src), sport, packet.payload.size))
        sock.sendto(1000, src, sport)

    sock.on_receive = respond
    return log


class TestLifeOfAPacket:
    def test_opt_in_lease(self, world):
        vini, exp, iias, server, napt = world
        client = iias.opt_in(vini.nodes["client"], "v0")
        vini.run(until=21.0)
        assert len(server.clients) == 1
        leased = server.address_of(client)
        assert leased in server.client_pool

    def test_request_exits_via_napt_with_public_source(self, world):
        vini, exp, iias, server, napt = world
        web_log = run_echo_server(vini)
        client = iias.opt_in(vini.nodes["client"], "v0")
        vini.run(until=21.0)
        leased = server.address_of(client)
        client.send(make_web_request(leased, vini.nodes["cnn"].address))
        vini.run(until=25.0)
        assert len(web_log) == 1
        src, sport, size = web_log[0]
        # Step 4 of Fig. 2: source rewritten to the egress node's
        # public address and an allocated port.
        assert src == str(vini.nodes["p2"].address)
        assert sport >= 50000
        assert size == 200

    def test_response_returns_through_overlay_to_client(self, world):
        vini, exp, iias, server, napt = world
        run_echo_server(vini)
        client = iias.opt_in(vini.nodes["client"], "v0")
        vini.run(until=21.0)
        leased = server.address_of(client)
        got = []
        client.on_receive = lambda pkt: got.append(
            (str(pkt.ip.src), str(pkt.ip.dst), pkt.payload.size)
        )
        client.send(make_web_request(leased, vini.nodes["cnn"].address))
        vini.run(until=25.0)
        assert len(got) == 1
        src, dst, size = got[0]
        assert src == str(vini.nodes["cnn"].address)
        assert dst == str(leased)
        assert size == 1000
        assert napt.translated_in == 1

    def test_source_spoofing_rewritten_at_ingress(self, world):
        vini, exp, iias, server, napt = world
        web_log = run_echo_server(vini)
        client = iias.opt_in(vini.nodes["client"], "v0")
        vini.run(until=21.0)
        spoofed = make_web_request("10.99.99.99", vini.nodes["cnn"].address)
        client.send(spoofed)
        vini.run(until=25.0)
        assert len(web_log) == 1  # delivered, but as the leased address
        assert napt.translated_out == 1

    def test_two_clients_get_distinct_leases(self, world):
        vini, exp, iias, server, napt = world
        c1 = iias.opt_in(vini.nodes["client"], "v0")
        c2 = iias.opt_in(vini.nodes["cnn"], "v0")  # any host can opt in
        vini.run(until=21.0)
        assert server.address_of(c1) != server.address_of(c2)

    def test_overlay_to_overlay_through_vpn(self, world):
        """Client traffic to another node's tap address stays internal."""
        vini, exp, iias, server, napt = world
        client = iias.opt_in(vini.nodes["client"], "v0")
        vini.run(until=21.0)
        leased = server.address_of(client)
        v2_tap = exp.network.nodes["v2"].tap_addr
        got = []
        v2 = exp.network.nodes["v2"]
        app = v2.sliver.create_process("app")
        sock = v2.phys_node.udp_socket(app, port=7000, local_addr=v2_tap)
        sock.on_receive = lambda pkt, src, sport: got.append(str(src))
        client.send(make_web_request(leased, v2_tap, dport=7000))
        vini.run(until=25.0)
        assert got == [str(leased)]
        assert napt.translated_out == 0  # never left the overlay


class TestConfigGeneration:
    def test_click_config_lists_elements_and_wiring(self, world):
        vini, exp, iias, server, napt = world
        text = click_config(exp.network.nodes["v1"])
        assert "RadixIPLookup" in text
        assert "UDPTunnel" in text
        assert "tun_to_v0" in text and "tun_to_v2" in text
        assert "->" in text

    def test_xorp_config_has_ospf_block(self, world):
        vini, exp, iias, server, napt = world
        text = xorp_config(exp.network.nodes["v0"])
        assert "ospf4" in text
        assert "router-id" in text
        assert "hello-interval: 2" in text

    def test_duplicate_roles_rejected(self, world):
        vini, exp, iias, server, napt = world
        with pytest.raises(ValueError):
            iias.add_openvpn_server("v0")
        with pytest.raises(ValueError):
            iias.configure_egress("v2")
