"""RIP tests: propagation, split horizon, timeout, convergence."""

import pytest

from repro.net.addr import ip
from repro.sim import Simulator
from tests.routing.conftest import build_topology


def configure_rip(routers, update_interval=5.0, timeout=20.0):
    for router in routers.values():
        router.configure_rip(update_interval=update_interval, timeout=timeout)
        router.start()


def test_routes_propagate_across_line():
    sim = Simulator(seed=61)
    fabric, platforms, routers, ifmap = build_topology(sim, [("a", "b"), ("b", "c")])
    configure_rip(routers)
    sim.run(until=60.0)
    # a learns the b--c subnet via b.
    bc_prefix = ifmap[("b", "c")][0].prefix
    best = routers["a"].rib.best(bc_prefix)
    assert best is not None
    assert best.protocol == "rip"
    assert best.nexthop == ifmap[("a", "b")][1].address


def test_metric_counts_hops():
    sim = Simulator(seed=62)
    edges = [("a", "b"), ("b", "c"), ("c", "d")]
    fabric, platforms, routers, ifmap = build_topology(sim, edges)
    configure_rip(routers)
    sim.run(until=90.0)
    cd_prefix = ifmap[("c", "d")][0].prefix
    best = routers["a"].rib.best(cd_prefix)
    assert best is not None
    assert best.metric == pytest.approx(2.0)


def test_timeout_expires_dead_routes():
    sim = Simulator(seed=63)
    fabric, platforms, routers, ifmap = build_topology(sim, [("a", "b"), ("b", "c")])
    configure_rip(routers, update_interval=5.0, timeout=15.0)
    sim.run(until=40.0)
    bc_prefix = ifmap[("b", "c")][0].prefix
    assert routers["a"].rib.best(bc_prefix) is not None
    fabric.fail(platforms["a"], "to_b")
    sim.run(until=100.0)
    assert routers["a"].rib.best(bc_prefix) is None


def test_reroute_around_failure():
    sim = Simulator(seed=64)
    edges = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]
    fabric, platforms, routers, ifmap = build_topology(sim, edges)
    configure_rip(routers, update_interval=5.0, timeout=15.0)
    sim.run(until=60.0)
    bd_prefix = ifmap[("b", "d")][0].prefix
    assert routers["a"].rib.best(bd_prefix).nexthop == ifmap[("a", "b")][1].address
    fabric.fail(platforms["a"], "to_b")
    sim.run(until=150.0)
    best = routers["a"].rib.best(bd_prefix)
    assert best is not None
    assert best.nexthop == ifmap[("a", "c")][1].address


def test_split_horizon_poisons_reverse():
    """b must advertise a-learned routes back to a with metric 16."""
    sim = Simulator(seed=65)
    fabric, platforms, routers, ifmap = build_topology(sim, [("a", "b")])
    configure_rip(routers)
    received = []

    def spy(iface, packet):
        if packet.payload.tag == "rip" and iface.name == "to_b":
            received.append(packet.payload.data)

    platforms["a"].register_receiver(spy)
    sim.run(until=30.0)
    assert received
    ab_key = ifmap[("a", "b")][0].prefix.key
    # In b's advertisements to a, nothing learned *from a* appears with
    # a finite metric (the shared subnet is connected on b, metric 0).
    for update in received:
        for pfx, metric in update.entries:
            if pfx.key == ab_key:
                assert metric in (0, 16)
