"""Differential battery: incremental SPF vs. the reference Dijkstra.

The incremental path in :class:`OSPFDaemon` must be *indistinguishable*
from a full recomputation: after any churn sequence, every router's
(dist, first_hop) tables equal what ``_dijkstra()`` derives from the
same LSDB, an incremental world's FIBs equal a full world's FIBs, and
the RIB's delta-applied FIB is byte-identical to a from-scratch
rebuild. Topologies and churn are drawn from seeded RNGs so failures
replay.
"""

import random

import pytest

from repro.net.addr import Prefix
from repro.sim import Simulator

from .conftest import build_topology, router_id

HELLO = 1.0
DEAD = 4.0
SETTLE = 6.0  # > dead interval + spf holddown: every event fully settles


def random_graph(rng, n):
    """A connected edge list over routers r0..r{n-1} with random costs."""
    names = [f"r{i}" for i in range(n)]
    edges = []
    for i in range(1, n):
        edges.append((names[rng.randrange(i)], names[i]))
    extra = rng.randint(0, n)
    while extra > 0:
        a, b = rng.sample(names, 2)
        if (a, b) not in edges and (b, a) not in edges:
            edges.append((a, b))
        extra -= 1
    costs = {edge: rng.randint(1, 10) for edge in edges}
    return names, edges, costs


def make_world(seed, names, edges, costs, incremental):
    sim = Simulator(seed=seed)
    fabric, platforms, routers, ifmap = build_topology(
        sim, edges, delay=0.001, costs=costs
    )
    for index, name in enumerate(names):
        routers[name].configure_ospf(
            router_id(index),
            hello_interval=HELLO,
            dead_interval=DEAD,
            stub_prefixes=[(f"10.255.{index}.1/32", 0)],
            incremental_spf=incremental,
        )
        routers[name].start()
    return sim, fabric, platforms, routers, ifmap


def churn_events(rng, edges, count=8):
    """(kind, edge, new_cost) tuples; failures recover before reuse."""
    events = []
    down = set()
    for _ in range(count):
        up = [e for e in edges if e not in down]
        if down and (not up or rng.random() < 0.45):
            edge = rng.choice(sorted(down))
            events.append(("recover", edge, None))
            down.discard(edge)
        elif rng.random() < 0.5 and up:
            edge = rng.choice(up)
            events.append(("fail", edge, None))
            down.add(edge)
        else:
            edge = rng.choice(edges)
            events.append(("cost", edge, rng.randint(1, 10)))
    return events


def apply_event(event, fabric, platforms, routers, ifmap):
    kind, (a, b), new_cost = event
    ia, ib = ifmap[(a, b)]
    if kind == "fail":
        fabric.fail(platforms[a], ia.name)
        routers[a].ospf.interface_down(ia.name)
        routers[b].ospf.interface_down(ib.name)
    elif kind == "recover":
        fabric.recover(platforms[a], ia.name)
        routers[a].ospf.interface_up(ia.name)
        routers[b].ospf.interface_up(ib.name)
    else:
        ia.cost = new_cost
        ib.cost = new_cost
        routers[a].ospf._originate()
        routers[b].ospf._originate()


def assert_tables_match_reference(routers):
    """Every daemon's incremental tables == a fresh full Dijkstra over
    the exact same LSDB (the core differential claim)."""
    for name, router in sorted(routers.items()):
        daemon = router.ospf
        ref_dist, ref_first_hop, _ref_parent = daemon._dijkstra()
        assert daemon._spt is not None, name
        dist, first_hop, _parent = daemon._spt
        assert dist == ref_dist, f"{name}: dist diverged"
        assert first_hop == ref_first_hop, f"{name}: first_hop diverged"


def fib_snapshot(routers):
    return {
        name: dict(router.platform.fea.routes)
        for name, router in routers.items()
    }


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
def test_incremental_matches_full_reference_after_random_churn(seed):
    rng = random.Random(seed)
    names, edges, costs = random_graph(rng, rng.randint(4, 9))
    sim, fabric, platforms, routers, ifmap = make_world(
        seed, names, edges, costs, incremental=True
    )
    sim.run(until=SETTLE)
    assert_tables_match_reference(routers)
    for event in churn_events(rng, edges):
        apply_event(event, fabric, platforms, routers, ifmap)
        sim.run(until=sim.now + SETTLE)
        assert_tables_match_reference(routers)
    # Sanity: incremental runs actually happened (remote LSA churn).
    assert any(r.ospf.spf_incremental_runs > 0 for r in routers.values())


@pytest.mark.parametrize("seed", [7, 8, 9])
def test_incremental_world_fib_equals_full_world_fib(seed):
    rng = random.Random(seed)
    names, edges, costs = random_graph(rng, rng.randint(4, 8))
    events = churn_events(rng, edges)
    snapshots = {}
    for mode in (True, False):
        sim, fabric, platforms, routers, ifmap = make_world(
            seed, names, edges, costs, incremental=mode
        )
        sim.run(until=SETTLE)
        for event in events:
            apply_event(event, fabric, platforms, routers, ifmap)
            sim.run(until=sim.now + SETTLE)
        snapshots[mode] = fib_snapshot(routers)
    assert snapshots[True] == snapshots[False]


@pytest.mark.parametrize("seed", [10, 11])
def test_fib_delta_matches_full_rebuild(seed):
    """The delta stream the RIB applied leaves the FEA byte-identical
    to reprogramming it from scratch, at every settle point."""
    rng = random.Random(seed)
    names, edges, costs = random_graph(rng, rng.randint(4, 8))
    sim, fabric, platforms, routers, ifmap = make_world(
        seed, names, edges, costs, incremental=True
    )
    sim.run(until=SETTLE)

    def check_rebuild():
        for name, router in sorted(routers.items()):
            before = dict(router.platform.fea.routes)
            router.rib.rebuild_fib()
            assert dict(router.platform.fea.routes) == before, name

    check_rebuild()
    for event in churn_events(rng, edges):
        apply_event(event, fabric, platforms, routers, ifmap)
        sim.run(until=sim.now + SETTLE)
        check_rebuild()


def test_seq_only_refresh_skips_recompute():
    """A periodic LSA refresh (seq bump, same links/stubs) must not
    re-run Dijkstra or touch the RIB at remote routers."""
    names, edges = ["r0", "r1", "r2"], [("r0", "r1"), ("r1", "r2")]
    sim, fabric, platforms, routers, ifmap = make_world(
        21, names, edges, {}, incremental=True
    )
    sim.run(until=SETTLE)
    target = routers["r2"].ospf
    dist_before = target._spt[0]
    incr_before = target.spf_incremental_runs
    rib_events = []
    routers["r2"].rib.on_change(lambda pfx, best: rib_events.append(pfx))
    routers["r0"].ospf._originate()  # refresh: same links, same stubs
    sim.run(until=sim.now + SETTLE)
    assert target.spf_incremental_runs > incr_before
    assert target._spt[0] is dist_before  # graph untouched: no Dijkstra
    assert rib_events == []


def test_own_lsa_change_falls_back_to_full():
    names, edges = ["r0", "r1", "r2"], [("r0", "r1"), ("r1", "r2")]
    sim, fabric, platforms, routers, ifmap = make_world(
        22, names, edges, {}, incremental=True
    )
    sim.run(until=SETTLE)
    daemon = routers["r0"].ospf
    full_before = daemon.spf_full_runs
    ia, _ib = ifmap[("r0", "r1")]
    fabric.fail(platforms["r0"], ia.name)
    daemon.interface_down(ia.name)
    routers["r1"].ospf.interface_down(ifmap[("r0", "r1")][1].name)
    sim.run(until=sim.now + SETTLE)
    assert daemon.spf_full_runs > full_before


def test_full_mode_daemon_never_runs_incremental():
    names, edges = ["r0", "r1"], [("r0", "r1")]
    sim, fabric, platforms, routers, ifmap = make_world(
        23, names, edges, {}, incremental=False
    )
    sim.run(until=SETTLE)
    for router in routers.values():
        assert router.ospf.spf_incremental_runs == 0
        assert router.ospf.spf_full_runs == router.ospf.spf_runs


def test_fea_clear_only_drops_rib_routes():
    """FEA.clear drops exactly the RIB-programmed entries."""
    from repro.routing.platform import FEA

    fea = FEA()
    fea.install(Prefix.parse("10.1.0.0/16"), None, "eth0")
    assert len(fea) == 1
    fea.clear()
    assert len(fea) == 0
