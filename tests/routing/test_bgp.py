"""BGP tests: sessions, decision process, propagation, failures."""

import pytest

from repro.net.addr import ip, prefix
from repro.routing.bgp import (
    BGPDaemon,
    BGPRoute,
    DirectTransport,
    ESTABLISHED,
    IDLE,
)
from repro.routing.platform import FEA
from repro.routing.rib import RIB
from repro.sim import Simulator


def peered_daemons(sim, asn_a=65001, asn_b=65002, delay=0.010, mrai=0.1):
    a = BGPDaemon(sim, asn_a, "192.0.2.1", rib=RIB(FEA()))
    b = BGPDaemon(sim, asn_b, "192.0.2.2", rib=RIB(FEA()))
    ta, tb = DirectTransport.pair(sim, delay=delay)
    sa = a.add_session(ta, asn_b, mrai=mrai)
    sb = b.add_session(tb, asn_a, mrai=mrai)
    sa.start()
    sb.start()
    return a, b, sa, sb, ta


def test_session_establishes():
    sim = Simulator(seed=71)
    a, b, sa, sb, _ = peered_daemons(sim)
    sim.run(until=5.0)
    assert sa.state == ESTABLISHED
    assert sb.state == ESTABLISHED


def test_originated_prefix_propagates_with_as_path():
    sim = Simulator(seed=72)
    a, b, sa, sb, _ = peered_daemons(sim)
    a.originate("198.18.1.0/24")
    sim.run(until=10.0)
    route = b.best("198.18.1.0/24")
    assert route is not None
    assert route.as_path == (65001,)
    assert b.rib.best("198.18.1.0/24").protocol == "bgp"


def test_as_path_grows_across_chain():
    sim = Simulator(seed=73)
    a = BGPDaemon(sim, 65001, "192.0.2.1")
    b = BGPDaemon(sim, 65002, "192.0.2.2")
    c = BGPDaemon(sim, 65003, "192.0.2.3")
    t1a, t1b = DirectTransport.pair(sim)
    t2b, t2c = DirectTransport.pair(sim)
    a.add_session(t1a, 65002, mrai=0.1).start()
    b.add_session(t1b, 65001, mrai=0.1).start()
    b.add_session(t2b, 65003, mrai=0.1).start()
    c.add_session(t2c, 65002, mrai=0.1).start()
    a.originate("198.18.1.0/24")
    sim.run(until=10.0)
    route = c.best("198.18.1.0/24")
    assert route is not None
    assert route.as_path == (65002, 65001)


def test_loop_prevention_rejects_own_asn():
    sim = Simulator(seed=74)
    a, b, sa, sb, _ = peered_daemons(sim)
    sim.run(until=5.0)
    # b receives a route already containing its own ASN.
    poisoned = BGPRoute("198.18.2.0/24", (65001, 65002), "192.0.2.1")
    sb._on_update(type("U", (), {"announce": [poisoned], "withdraw": []})())
    assert b.best("198.18.2.0/24") is None


def test_shorter_as_path_preferred():
    sim = Simulator(seed=75)
    c = BGPDaemon(sim, 65003, "192.0.2.3", rib=RIB(FEA()))
    short = BGPDaemon(sim, 65001, "192.0.2.1")
    long_ = BGPDaemon(sim, 65002, "192.0.2.2")
    ts, tc1 = DirectTransport.pair(sim)
    tl, tc2 = DirectTransport.pair(sim)
    short.add_session(ts, 65003, mrai=0.1).start()
    c.add_session(tc1, 65001, mrai=0.1).start()
    long_.add_session(tl, 65003, mrai=0.1).start()
    c.add_session(tc2, 65002, mrai=0.1).start()
    sim.run(until=5.0)
    # Both announce the same prefix; long_ fakes a longer path.
    short.originate("198.18.3.0/24")
    long_.originated[prefix("198.18.3.0/24").key] = BGPRoute(
        "198.18.3.0/24", (64999, 64998), "192.0.2.2"
    )
    long_._route_changed(prefix("198.18.3.0/24"))
    sim.run(until=20.0)
    best = c.best("198.18.3.0/24")
    assert best.as_path == (65001,)


def test_local_pref_beats_as_path():
    sim = Simulator(seed=76)
    c = BGPDaemon(sim, 65003, "192.0.2.3")
    short = BGPDaemon(sim, 65001, "192.0.2.1")
    long_ = BGPDaemon(sim, 65002, "192.0.2.2")
    ts, tc1 = DirectTransport.pair(sim)
    tl, tc2 = DirectTransport.pair(sim)
    short.add_session(ts, 65003, mrai=0.1).start()
    c.add_session(tc1, 65001, mrai=0.1).start()
    long_.add_session(tl, 65003, mrai=0.1).start()

    def prefer_long(route):
        route.local_pref = 200
        return route

    c.add_session(tc2, 65002, mrai=0.1, import_policy=prefer_long).start()
    short.originate("198.18.3.0/24")
    long_.originated[prefix("198.18.3.0/24").key] = BGPRoute(
        "198.18.3.0/24", (64999, 64998), "192.0.2.2"
    )
    long_._route_changed(prefix("198.18.3.0/24"))
    sim.run(until=20.0)
    assert c.best("198.18.3.0/24").local_pref == 200


def test_session_failure_withdraws_learned_routes():
    sim = Simulator(seed=77)
    a, b, sa, sb, ta = peered_daemons(sim)
    a.originate("198.18.1.0/24")
    sim.run(until=10.0)
    assert b.best("198.18.1.0/24") is not None
    ta.fail()
    sim.run(until=12.0)
    assert sb.state == IDLE
    assert b.best("198.18.1.0/24") is None


def test_hold_timer_expires_without_keepalives():
    sim = Simulator(seed=78)
    a, b, sa, sb, ta = peered_daemons(sim)
    sim.run(until=5.0)
    # Silently break one direction only: b stops hearing from a.
    ta.up = False
    sim.run(until=200.0)
    assert sb.state == IDLE


def test_withdraw_propagates():
    sim = Simulator(seed=79)
    a, b, sa, sb, _ = peered_daemons(sim)
    a.originate("198.18.1.0/24")
    sim.run(until=10.0)
    a.withdraw_origin("198.18.1.0/24")
    sim.run(until=20.0)
    assert b.best("198.18.1.0/24") is None


def test_export_policy_can_block():
    sim = Simulator(seed=80)
    a = BGPDaemon(sim, 65001, "192.0.2.1")
    b = BGPDaemon(sim, 65002, "192.0.2.2")
    ta, tb = DirectTransport.pair(sim)
    a.add_session(
        ta, 65002, mrai=0.1,
        export_policy=lambda r: None if r.prefix == prefix("198.18.9.0/24") else r,
    ).start()
    b.add_session(tb, 65001, mrai=0.1).start()
    a.originate("198.18.9.0/24")
    a.originate("198.18.10.0/24")
    sim.run(until=10.0)
    assert b.best("198.18.9.0/24") is None
    assert b.best("198.18.10.0/24") is not None


def test_mrai_batches_updates():
    sim = Simulator(seed=81)
    a, b, sa, sb, _ = peered_daemons(sim, mrai=5.0)
    sim.run(until=2.0)
    for i in range(10):
        a.originate(f"198.18.{i}.0/24")
    sim.run(until=30.0)
    # All 10 prefixes arrive, but in few UPDATE messages.
    assert all(b.best(f"198.18.{i}.0/24") is not None for i in range(10))
    assert sa.updates_sent <= 3
