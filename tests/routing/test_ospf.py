"""OSPF tests: adjacency, flooding, SPF, failure convergence."""

import pytest

from repro.net.addr import ip, prefix
from repro.sim import Simulator
from tests.routing.conftest import build_topology, router_id


def configure_ospf(routers, hello=5.0, dead=10.0, stub_for=None):
    """Configure OSPF on every router; each gets a /32 stub."""
    stubs = {}
    for index, (name, router) in enumerate(sorted(routers.items())):
        rid = router_id(index)
        stub = f"{rid}/32"
        stubs[name] = stub
        router.configure_ospf(
            rid,
            hello_interval=hello,
            dead_interval=dead,
            stub_prefixes=[(stub, 0)],
        )
        router.start()
    return stubs


def test_two_router_adjacency_reaches_full():
    sim = Simulator(seed=41)
    fabric, platforms, routers, ifmap = build_topology(sim, [("a", "b")])
    configure_ospf(routers)
    sim.run(until=30.0)
    assert routers["a"].ospf.neighbor_states() == {router_id(1): "Full"}
    assert routers["b"].ospf.neighbor_states() == {router_id(0): "Full"}


def test_lsdb_synchronized_across_line():
    sim = Simulator(seed=42)
    fabric, platforms, routers, _ = build_topology(sim, [("a", "b"), ("b", "c")])
    configure_ospf(routers)
    sim.run(until=30.0)
    for router in routers.values():
        assert set(router.ospf.lsdb) == {
            int(ip(router_id(i))) for i in range(3)
        }


def test_routes_through_middle_router():
    sim = Simulator(seed=43)
    fabric, platforms, routers, ifmap = build_topology(sim, [("a", "b"), ("b", "c")])
    stubs = configure_ospf(routers)
    sim.run(until=30.0)
    best = routers["a"].rib.lookup(ip(router_id(2)))  # c's stub
    assert best is not None
    assert best.protocol == "ospf"
    # Next hop is b's interface toward a.
    assert best.nexthop == ifmap[("a", "b")][1].address


def test_costs_respected_in_path_selection():
    # Square: a-b-d (cost 1+1) vs a-c-d (cost 5+5).
    sim = Simulator(seed=44)
    edges = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]
    costs = {("a", "c"): 5, ("c", "d"): 5}
    fabric, platforms, routers, ifmap = build_topology(sim, edges, costs=costs)
    configure_ospf(routers)
    sim.run(until=30.0)
    best = routers["a"].rib.lookup(ip(router_id(3)))  # d's stub
    assert best.nexthop == ifmap[("a", "b")][1].address
    assert best.metric == pytest.approx(2.0)


def test_failure_detected_by_dead_interval_and_rerouted():
    sim = Simulator(seed=45)
    edges = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]
    fabric, platforms, routers, ifmap = build_topology(sim, edges)
    configure_ospf(routers, hello=5.0, dead=10.0)
    sim.run(until=30.0)
    # Primary path a->b->d (router ids are alphabetical: a=0,b=1,c=2,d=3).
    assert routers["a"].rib.lookup(ip(router_id(3))).nexthop == ifmap[("a", "b")][1].address
    # Fail a--b at t=30.
    fabric.fail(platforms["a"], "to_b")
    sim.run(until=55.0)
    best = routers["a"].rib.lookup(ip(router_id(3)))
    assert best is not None
    assert best.nexthop == ifmap[("a", "c")][1].address  # rerouted via c
    assert best.metric == pytest.approx(2.0)
    # Detection took at least most of a dead interval but converged
    # within dead + flooding + SPF.
    down_events = [
        r for r in sim.trace.select("ospf_neighbor", state="Down")
        if r.get("reason") == "dead_interval"
    ]
    assert down_events
    assert 35.0 <= down_events[0].time <= 41.0


def test_recovery_restores_original_path():
    sim = Simulator(seed=46)
    edges = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]
    costs = {("a", "c"): 3, ("c", "d"): 3}
    fabric, platforms, routers, ifmap = build_topology(sim, edges, costs=costs)
    configure_ospf(routers, hello=5.0, dead=10.0)
    sim.run(until=30.0)
    fabric.fail(platforms["a"], "to_b")
    sim.run(until=60.0)
    assert routers["a"].rib.lookup(ip(router_id(3))).nexthop == ifmap[("a", "c")][1].address
    fabric.recover(platforms["a"], "to_b")
    sim.run(until=100.0)
    best = routers["a"].rib.lookup(ip(router_id(3)))
    assert best.nexthop == ifmap[("a", "b")][1].address
    assert best.metric == pytest.approx(2.0)


def test_upcall_bypasses_dead_interval():
    """Section 6.1: upcalls expose failures immediately."""
    sim = Simulator(seed=47)
    edges = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]
    fabric, platforms, routers, ifmap = build_topology(sim, edges)
    configure_ospf(routers, hello=5.0, dead=10.0)
    sim.run(until=30.0)
    fabric.fail(platforms["a"], "to_b")
    # Upcall on both ends at failure time.
    routers["a"].ospf.interface_down("to_b")
    routers["b"].ospf.interface_down("to_a")
    sim.run(until=32.0)  # well under the 10s dead interval
    best = routers["a"].rib.lookup(ip(router_id(3)))
    assert best.nexthop == ifmap[("a", "c")][1].address


def test_partition_withdraws_routes():
    sim = Simulator(seed=48)
    fabric, platforms, routers, _ = build_topology(sim, [("a", "b")])
    configure_ospf(routers)
    sim.run(until=30.0)
    assert routers["a"].rib.lookup(ip(router_id(1))) is not None
    fabric.fail(platforms["a"], "to_b")
    sim.run(until=60.0)
    assert routers["a"].rib.lookup(ip(router_id(1))) is None


def test_mismatched_timers_prevent_adjacency():
    sim = Simulator(seed=49)
    fabric, platforms, routers, _ = build_topology(sim, [("a", "b")])
    routers["a"].configure_ospf(router_id(0), hello_interval=5.0, dead_interval=10.0)
    routers["b"].configure_ospf(router_id(1), hello_interval=10.0, dead_interval=40.0)
    routers["a"].start()
    routers["b"].start()
    sim.run(until=60.0)
    assert routers["a"].ospf.neighbor_states() == {}


def test_spf_is_damped():
    sim = Simulator(seed=50)
    fabric, platforms, routers, _ = build_topology(sim, [("a", "b"), ("b", "c")])
    configure_ospf(routers)
    sim.run(until=60.0)
    # A handful of SPF runs, not one per LSA arrival.
    assert routers["a"].ospf.spf_runs < 12


def test_connected_beats_ospf_for_shared_subnet():
    sim = Simulator(seed=51)
    fabric, platforms, routers, ifmap = build_topology(sim, [("a", "b"), ("b", "c")])
    configure_ospf(routers)
    sim.run(until=30.0)
    ia, ib = ifmap[("a", "b")]
    best = routers["a"].rib.best(ia.prefix)
    assert best.protocol == "connected"
