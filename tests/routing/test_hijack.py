"""Scenario regressions: prefix hijack and stuck (ghost) routes.

Both scenarios run on the small internet zoo as FaultPlans, and both
are observed two ways at once — live via :class:`ConvergenceTracker`
and offline via :func:`episodes_from_trace` — with the two derivations
asserted equal, the same live-vs-batch cross-check the metric registry
gets elsewhere.
"""

import pytest

from repro.faults.invariants import walk_overlay_path
from repro.net.addr import IPv4Address
from repro.obs.routing import ConvergenceTracker, episodes_from_trace
from repro.topologies.internet import (
    build_internet,
    hijack_plan,
    stuck_route_plan,
)

SMALL = dict(n_as=6, seed=3)
WARMUP = 60.0
VICTIM, ATTACKER = 3, 6


def _episode_keys(episodes):
    return [(e.trigger, e.start, e.changes, e.first_change, e.last_change)
            for e in episodes]


@pytest.fixture
def world():
    built = build_internet(**SMALL)
    built.run(until=WARMUP)
    assert built.converged_routers() == built.spec.n_routers
    return built


def _victim_host(spec):
    return str(IPv4Address(int(spec.by_asn[VICTIM].prefix.network) + 1))


def test_hijack_diverts_blackholes_and_heals(world):
    spec = world.spec
    victim = spec.by_asn[VICTIM]
    attacker = spec.by_asn[ATTACKER]
    pre_paths = {
        a.asn: world.best_as_path(a.anchor, VICTIM)
        for a in spec.ases if a.asn != VICTIM
    }
    tracker = ConvergenceTracker(world.experiment).install()

    plan = hijack_plan(world, ATTACKER, VICTIM, at=WARMUP + 1.0,
                       duration=20.0)
    world.experiment.apply_faults(plan)

    world.run(until=WARMUP + 10.0)  # mid-hijack
    # The attacker's AS is pulled to the bogus origination...
    assert world.best_as_path(attacker.anchor, VICTIM) == (ATTACKER,)
    # ...where traffic black-holes: the bogus origin owns no data-plane
    # route for the prefix.
    assert world.anchor(ATTACKER).xorp.rib.best(victim.prefix) is None
    inside = attacker.routers[1]
    status, walked = walk_overlay_path(
        world.network, world.node(inside), world.anchor(VICTIM),
        addr=_victim_host(spec),
    )
    assert status == "blackhole", (status, walked)
    # The true origin keeps its own prefix.
    assert world.best_as_path(victim.anchor, VICTIM) == (VICTIM,)

    world.run(until=WARMUP + 40.0)  # withdrawn and re-converged
    assert world.converged_routers() == spec.n_routers
    post_paths = {
        a.asn: world.best_as_path(a.anchor, VICTIM)
        for a in spec.ases if a.asn != VICTIM
    }
    assert post_paths == pre_paths  # the hijack healed completely

    # Two fault firings -> two episodes, each with route churn; the
    # live stitching equals the offline trace re-derivation.
    assert len(tracker.episodes) == 2
    assert all(e.changes > 0 for e in tracker.episodes)
    assert [e.trigger for e in tracker.episodes] == [
        f"hijack-as{ATTACKER}:call as{ATTACKER} hijacks {victim.prefix}",
        f"hijack-as{ATTACKER}:call as{ATTACKER} withdraws {victim.prefix}",
    ]
    offline = episodes_from_trace(world.sim.trace)
    assert _episode_keys(offline) == _episode_keys(tracker.episodes)
    assert [e.as_dict() for e in offline] == \
        [e.as_dict() for e in tracker.episodes]


def test_stuck_route_blackholes_until_restored(world):
    spec = world.spec
    edge = spec.inter_edges[0]
    near, far = spec.by_asn[edge.b_asn], spec.by_asn[edge.a_asn]
    far_host = str(IPv4Address(int(far.prefix.network) + 1))
    tracker = ConvergenceTracker(world.experiment).install()
    tracker.watch_path(near.anchor, far.anchor, addr=far_host)

    fail_at = WARMUP + 1.0
    plan = stuck_route_plan(world, edge.a_asn, edge.b_asn, at=fail_at,
                            duration=30.0)
    world.experiment.apply_faults(plan)

    world.run(until=fail_at + 10.0)  # inside the stuck window
    # Control plane is silent (hold_time 90 > 10): the stale route is
    # still installed, so traffic black-holes instead of rerouting.
    status, walked = walk_overlay_path(
        world.network, world.node(near.anchor), world.node(far.anchor),
        addr=far_host,
    )
    assert status == "blackhole", (status, walked)
    assert world.node(near.anchor).xorp.rib.best(far.prefix) is not None

    world.run(until=fail_at + 120.0)  # restored, sessions re-settled
    assert world.converged_routers() == spec.n_routers
    status, _path = walk_overlay_path(
        world.network, world.node(near.anchor), world.node(far.anchor),
        addr=far_host,
    )
    assert status == "delivered"

    # The tracker saw the blackhole window open at the failure instant
    # and close by the end of the run.
    holes = tracker.blackhole_windows(near.anchor, far.anchor,
                                      addr=far_host)
    assert holes and abs(holes[0]["start"] - fail_at) < 1e-9
    assert holes[-1]["end"] < fail_at + 120.0
    offline = episodes_from_trace(world.sim.trace)
    assert _episode_keys(offline) == _episode_keys(tracker.episodes)


def test_stuck_route_expires_via_hold_timer_without_restore(world):
    """Left alone, the dead session's hold timer (90 s) eventually
    fires, the stale routes are flushed, and the internet heals around
    the dead edge (when the graph is 2-connected enough) or at least
    stops black-holing silently."""
    spec = world.spec
    edge = spec.inter_edges[0]
    fail_at = WARMUP + 1.0
    plan = stuck_route_plan(world, edge.a_asn, edge.b_asn, at=fail_at)
    world.experiment.apply_faults(plan)

    world.run(until=fail_at + 60.0)  # < hold_time: still stuck
    near = spec.by_asn[edge.b_asn]
    far = spec.by_asn[edge.a_asn]
    assert world.node(near.anchor).xorp.rib.best(far.prefix) is not None

    world.run(until=fail_at + 150.0)  # hold timer long expired
    sessions = world.ebgp_sessions[
        (min(edge.a_asn, edge.b_asn), max(edge.a_asn, edge.b_asn))
    ]
    assert all(s.state != "Established" for s in sessions)
