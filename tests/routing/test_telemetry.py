"""Control-plane telemetry: the ospf.* / rib.* / fib.* / routing.* /
bgp.* metrics the daemons publish, each checked against the legacy
derivation it mirrors (trace records or plain attribute counters)."""

from repro.net.addr import ip
from repro.routing.bgp import BGPDaemon, DirectTransport
from repro.sim import Simulator
from tests.routing.conftest import build_topology, router_id
from tests.routing.test_ospf import configure_ospf

SQUARE = [("a", "b"), ("b", "d"), ("a", "c"), ("c", "d")]


def _square_world(seed=46, enable_rib_trace=False):
    sim = Simulator(seed=seed)
    if enable_rib_trace:
        sim.trace.enable("rib_change")
    fabric, platforms, routers, ifmap = build_topology(sim, SQUARE)
    configure_ospf(routers, hello=5.0, dead=10.0)
    return sim, fabric, platforms, routers, ifmap


# ----------------------------------------------------------------------
# OSPF adjacency / LSA lifecycle
# ----------------------------------------------------------------------
def test_adjacency_transition_counters_match_trace():
    sim, fabric, platforms, routers, _ = _square_world()
    sim.run(until=30.0)
    metrics = sim.metrics
    # Every counter inc is colocated with an ospf_neighbor trace log,
    # so per-state totals must equal the trace-derived counts.
    for state in ("init", "exchange", "full", "down"):
        total = metrics.sum_values("ospf.adjacency_transitions", state=state)
        traced = sim.trace.count("ospf_neighbor", state=state.capitalize())
        assert total == traced, (state, total, traced)
    # Each router brought both its neighbors to Full, none dropped.
    for index in range(4):
        rid = router_id(index)
        assert metrics.value(
            "ospf.adjacency_transitions", router=rid, state="full"
        ) == 2.0
        assert metrics.value(
            "ospf.adjacency_transitions", router=rid, state="down"
        ) == 0.0


def test_failure_increments_down_transitions():
    sim, fabric, platforms, routers, ifmap = _square_world(seed=47)
    sim.run(until=30.0)
    fabric.fail(platforms["a"], "to_b")
    sim.run(until=55.0)
    metrics = sim.metrics
    assert metrics.value(
        "ospf.adjacency_transitions", router=router_id(0), state="down"
    ) == 1.0
    assert metrics.value(
        "ospf.adjacency_transitions", router=router_id(1), state="down"
    ) == 1.0
    assert metrics.sum_values(
        "ospf.adjacency_transitions", state="down"
    ) == sim.trace.count("ospf_neighbor", state="Down")


def test_lsa_lifecycle_counters():
    sim, fabric, platforms, routers, _ = _square_world(seed=48)
    sim.run(until=30.0)
    metrics = sim.metrics
    for index in range(4):
        rid = router_id(index)
        # Every router re-originates as adjacencies come up ...
        assert metrics.value("ospf.lsa_originated", router=rid) >= 1.0
        # ... floods to neighbors, and installs the others' LSAs.
        assert metrics.value("ospf.lsa_flood_tx", router=rid) >= 1.0
        assert metrics.value("ospf.lsa_installed", router=rid) >= 3.0


# ----------------------------------------------------------------------
# RIB / FIB churn
# ----------------------------------------------------------------------
def test_rib_churn_counters_match_trace_records():
    sim, fabric, platforms, routers, ifmap = _square_world(
        seed=49, enable_rib_trace=True
    )
    sim.run(until=30.0)
    fabric.fail(platforms["a"], "to_b")
    sim.run(until=55.0)
    metrics = sim.metrics
    for name in routers:
        for op in ("add", "replace", "withdraw"):
            counted = metrics.value("rib.changes", router=name, op=op)
            traced = sim.trace.count("rib_change", router=name, op=op)
            assert counted == traced, (name, op, counted, traced)
        # The winners gauge equals the net add/withdraw balance.
        adds = metrics.value("rib.changes", router=name, op="add")
        withdraws = metrics.value("rib.changes", router=name, op="withdraw")
        assert metrics.value("rib.routes", router=name) == adds - withdraws
    # The reroute after the failure produced replace churn somewhere.
    assert metrics.sum_values("rib.changes", op="replace") > 0


def test_rib_changes_silent_without_enable():
    sim, fabric, platforms, routers, _ = _square_world(seed=50)
    sim.run(until=30.0)
    # rib_change is a quiet kind: no collector enabled it, so the run
    # logged none — but the pull counters still saw every change.
    assert sim.trace.count("rib_change") == 0
    assert sim.metrics.sum_values("rib.changes", op="add") > 0
    assert sim.metrics.sum_values("fib.installs") > 0


def test_platform_rx_counter_matches_attribute():
    sim, fabric, platforms, routers, _ = _square_world(seed=51)
    sim.run(until=30.0)
    for name, platform in platforms.items():
        value = sim.metrics.value("routing.rx_msgs", platform=name)
        assert value == float(platform.rx_msgs)
        assert value > 0


# ----------------------------------------------------------------------
# BGP route-level churn
# ----------------------------------------------------------------------
def test_bgp_route_churn_counters_match_session_attributes():
    sim = Simulator(seed=52)
    left = BGPDaemon(sim, 65001, "10.0.0.1", name="left")
    right = BGPDaemon(sim, 65002, "10.0.0.2", name="right")
    t_l, t_r = DirectTransport.pair(sim, delay=0.01)
    s_l = left.add_session(t_l, 65002, mrai=0.1)
    s_r = right.add_session(t_r, 65001, mrai=0.1)
    s_l.start()
    s_r.start()
    sim.run(until=2.0)
    left.originate("192.0.2.0/24")
    left.originate("198.51.100.0/24")
    sim.run(until=4.0)
    left.withdraw_origin("192.0.2.0/24")
    sim.run(until=6.0)
    metrics = sim.metrics
    announced = metrics.value("bgp.routes_announced", daemon="left",
                              peer="as65002")
    withdrawn = metrics.value("bgp.routes_withdrawn", daemon="left",
                              peer="as65002")
    assert announced == s_l.routes_announced == 2
    assert withdrawn == s_l.routes_withdrawn == 1
    assert metrics.value("bgp.loc_rib_routes", daemon="right") == len(
        right.loc_rib
    ) == 1.0
    assert right.best("198.51.100.0/24") is not None
    assert right.best("192.0.2.0/24") is None
