"""Property tests: OSPF against networkx shortest paths.

On any connected weighted topology, after convergence every router's
OSPF route to every other router's stub must exist and carry exactly
the graph-theoretic shortest-path metric. This is the strongest
correctness statement we can make about the SPF implementation.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addr import ip
from repro.sim import Simulator
from tests.routing.conftest import build_topology, router_id


def _random_connected_graph(n_nodes: int, extra_edges: int, seed: int):
    rng_graph = nx.random_labeled_tree(n_nodes, seed=seed)
    graph = nx.Graph(rng_graph.edges())
    import random

    rng = random.Random(seed)
    attempts = 0
    while extra_edges > 0 and attempts < 50:
        a, b = rng.sample(range(n_nodes), 2)
        attempts += 1
        if not graph.has_edge(a, b):
            graph.add_edge(a, b)
            extra_edges -= 1
    return graph


@settings(max_examples=8, deadline=None)
@given(
    n_nodes=st.integers(min_value=3, max_value=7),
    extra_edges=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_ospf_matches_networkx_shortest_paths(n_nodes, extra_edges, seed):
    graph = _random_connected_graph(n_nodes, extra_edges, seed)
    names = [f"r{i}" for i in range(n_nodes)]
    import random

    rng = random.Random(seed + 1)
    edges = []
    costs = {}
    weighted = nx.Graph()
    for a, b in sorted(graph.edges()):
        edge = (names[a], names[b])
        cost = rng.randint(1, 10)
        edges.append(edge)
        costs[edge] = cost
        weighted.add_edge(*edge, weight=cost)
    sim = Simulator(seed=seed)
    fabric, platforms, routers, ifmap = build_topology(sim, edges, costs=costs)
    ordered = sorted(routers)
    for index, name in enumerate(ordered):
        routers[name].configure_ospf(
            router_id(index),
            hello_interval=2.0,
            dead_interval=6.0,
            stub_prefixes=[(f"{router_id(index)}/32", 0)],
        )
        routers[name].start()
    sim.run(until=40.0)
    expected = dict(nx.all_pairs_dijkstra_path_length(weighted, weight="weight"))
    for src_index, src in enumerate(ordered):
        for dst_index, dst in enumerate(ordered):
            if src == dst:
                continue
            route = routers[src].rib.lookup(ip(router_id(dst_index)))
            assert route is not None, f"{src} has no route to {dst}"
            assert route.metric == pytest.approx(expected[src][dst]), (
                f"{src}->{dst}: ospf={route.metric} nx={expected[src][dst]}"
            )
