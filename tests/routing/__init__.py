"""Test package."""
