"""Helpers for routing tests: build small LocalFabric topologies."""

import pytest

from repro.net.addr import Prefix
from repro.routing import LocalFabric, LocalPlatform, RouterInterface, XORPRouter
from repro.sim import Simulator


def build_topology(sim, edges, delay=0.001, costs=None):
    """Build routers from an edge list like [("a", "b"), ("b", "c")].

    Each router gets a /32 loopback-style stub 10.255.x.1 advertised by
    OSPF via stub_prefixes at configure time (caller's job); interface
    subnets are allocated /30s from 10.9.0.0/16.

    Returns (fabric, {name: platform}, {name: XORPRouter},
             {(a, b): (iface_a, iface_b)}).
    """
    fabric = LocalFabric(sim)
    platforms = {}
    routers = {}
    names = sorted({n for edge in edges for n in edge})
    for name in names:
        platforms[name] = LocalPlatform(sim, name, fabric)
        routers[name] = XORPRouter(platforms[name])
    ifmap = {}
    subnets = Prefix("10.9.0.0", 16).subnets(30)
    for index, (a, b) in enumerate(edges):
        subnet = next(subnets)
        hosts = list(subnet.hosts())
        cost = (costs or {}).get((a, b), (costs or {}).get((b, a), 1))
        ia = RouterInterface(f"to_{b}", hosts[0], subnet, cost=cost, peer=hosts[1])
        ib = RouterInterface(f"to_{a}", hosts[1], subnet, cost=cost, peer=hosts[0])
        platforms[a].add_interface(ia)
        platforms[b].add_interface(ib)
        fabric.connect(platforms[a], ia.name, platforms[b], ib.name, delay=delay)
        ifmap[(a, b)] = (ia, ib)
    return fabric, platforms, routers, ifmap


def router_id(index):
    return f"10.255.{index}.1"


@pytest.fixture
def sim():
    return Simulator(seed=33)
