"""Unit tests for the RIB."""

from repro.net.addr import ip, prefix
from repro.routing.platform import FEA
from repro.routing.rib import AdminDistance, RIB, RibRoute


def route(pfx, proto, distance, metric=0.0, nexthop="10.0.0.1", ifname="eth0"):
    return RibRoute(pfx, ip(nexthop), ifname, proto, distance, metric)


def test_single_route_installed_in_fea():
    fea = FEA()
    rib = RIB(fea)
    rib.update(route("10.1.0.0/16", "static", 1))
    assert len(fea) == 1
    assert rib.best("10.1.0.0/16").protocol == "static"


def test_lower_distance_wins():
    fea = FEA()
    rib = RIB(fea)
    rib.update(route("10.1.0.0/16", "rip", AdminDistance.RIP, nexthop="10.0.0.2"))
    rib.update(route("10.1.0.0/16", "ospf", AdminDistance.OSPF, nexthop="10.0.0.3"))
    best = rib.best("10.1.0.0/16")
    assert best.protocol == "ospf"
    assert fea.routes[prefix("10.1.0.0/16").key][0] == ip("10.0.0.3")


def test_metric_breaks_distance_tie():
    fea = FEA()
    rib = RIB(fea)
    rib.update(route("10.1.0.0/16", "ospf", 110, metric=20, nexthop="10.0.0.2"))
    # Same protocol re-offering with better metric replaces.
    rib.update(route("10.1.0.0/16", "ospf", 110, metric=5, nexthop="10.0.0.3"))
    assert rib.best("10.1.0.0/16").nexthop == ip("10.0.0.3")


def test_withdraw_falls_back_to_next_best():
    fea = FEA()
    rib = RIB(fea)
    rib.update(route("10.1.0.0/16", "ospf", 110, nexthop="10.0.0.2"))
    rib.update(route("10.1.0.0/16", "rip", 120, nexthop="10.0.0.3"))
    rib.withdraw("10.1.0.0/16", "ospf")
    assert rib.best("10.1.0.0/16").protocol == "rip"
    rib.withdraw("10.1.0.0/16", "rip")
    assert rib.best("10.1.0.0/16") is None
    assert len(fea) == 0


def test_withdraw_absent_is_noop():
    rib = RIB(FEA())
    rib.withdraw("10.1.0.0/16", "ospf")  # no exception


def test_longest_prefix_lookup():
    rib = RIB(FEA())
    rib.update(route("10.0.0.0/8", "static", 1, nexthop="10.0.0.2"))
    rib.update(route("10.1.0.0/16", "static", 1, nexthop="10.0.0.3"))
    assert rib.lookup("10.1.5.5").nexthop == ip("10.0.0.3")
    assert rib.lookup("10.2.5.5").nexthop == ip("10.0.0.2")
    assert rib.lookup("192.0.2.1") is None


def test_change_listener_fires_on_real_changes_only():
    rib = RIB(FEA())
    events = []
    rib.on_change(lambda pfx, best: events.append((str(pfx), best.protocol if best else None)))
    rib.update(route("10.1.0.0/16", "ospf", 110, nexthop="10.0.0.2"))
    # Identical re-offer: no event.
    rib.update(route("10.1.0.0/16", "ospf", 110, nexthop="10.0.0.2"))
    rib.withdraw("10.1.0.0/16", "ospf")
    assert events == [("10.1.0.0/16", "ospf"), ("10.1.0.0/16", None)]


def test_withdraw_protocol_bulk():
    rib = RIB(FEA())
    rib.update(route("10.1.0.0/16", "rip", 120))
    rib.update(route("10.2.0.0/16", "rip", 120))
    rib.update(route("10.2.0.0/16", "static", 1))
    rib.withdraw_protocol("rip")
    assert rib.best("10.1.0.0/16") is None
    assert rib.best("10.2.0.0/16").protocol == "static"


def test_routes_listing():
    rib = RIB(FEA())
    rib.update(route("10.1.0.0/16", "static", 1))
    rib.update(route("10.2.0.0/16", "static", 1))
    assert len(rib.routes()) == 2
    assert len(rib) == 2
