"""Tests for the Section 6.1 BGP multiplexer."""

import pytest

from repro.routing.bgp import BGPDaemon, DirectTransport
from repro.routing.bgp_mux import BGPMultiplexer
from repro.sim import Simulator


def build_world(sim, clients=2, rate=1.0, burst=5.0):
    """External speaker <-> mux <-> N experiment daemons."""
    mux = BGPMultiplexer(sim, asn=64512, router_id="198.18.0.1",
                         vini_block="198.18.0.0/16")
    external = BGPDaemon(sim, 7018, "12.0.0.1", name="external")
    te, tm = DirectTransport.pair(sim)
    external.add_session(te, 64512, mrai=0.1).start()
    mux.attach_external(tm, 7018, mrai=0.1)
    experiments = []
    for index in range(clients):
        exp = BGPDaemon(sim, 65100 + index, f"198.18.{index + 1}.1",
                        name=f"exp{index}")
        tc, tmc = DirectTransport.pair(sim)
        exp.add_session(tc, 64512, mrai=0.1).start()
        mux.add_client(
            f"exp{index}", tmc, 65100 + index,
            allowed=f"198.18.{index + 1}.0/24",
            max_update_rate=rate, burst=burst,
        )
        experiments.append(exp)
    return mux, external, experiments


def test_external_routes_reach_all_experiments():
    sim = Simulator(seed=91)
    mux, external, exps = build_world(sim)
    external.originate("8.8.8.0/24")
    sim.run(until=20.0)
    for exp in exps:
        route = exp.best("8.8.8.0/24")
        assert route is not None
        assert 7018 in route.as_path


def test_experiment_announcement_reaches_external():
    sim = Simulator(seed=92)
    mux, external, exps = build_world(sim)
    exps[0].originate("198.18.1.0/24")
    sim.run(until=20.0)
    route = external.best("198.18.1.0/24")
    assert route is not None
    assert 64512 in route.as_path and 65100 in route.as_path


def test_foreign_prefix_filtered():
    """An experiment may announce only its own delegated block."""
    sim = Simulator(seed=93)
    mux, external, exps = build_world(sim)
    exps[0].originate("198.18.2.0/24")  # exp1's block, not exp0's!
    exps[0].originate("12.34.0.0/16")   # not VINI space at all
    sim.run(until=20.0)
    assert external.best("198.18.2.0/24") is None
    assert external.best("12.34.0.0/16") is None
    assert mux.stats()["exp0"]["filtered"] == 2


def test_rate_limit_caps_update_churn():
    sim = Simulator(seed=94)
    mux, external, exps = build_world(sim, clients=1, rate=0.5, burst=2.0)
    exp = exps[0]

    # Flap a prefix rapidly: announce/withdraw every 200 ms.
    def flap(count=0):
        if count >= 40:
            return
        if count % 2 == 0:
            exp.originate("198.18.1.0/24")
        else:
            exp.withdraw_origin("198.18.1.0/24")
        sim.at(0.2, flap, count + 1)

    flap()
    sim.run(until=60.0)
    stats = mux.stats()["exp0"]
    assert stats["ratelimited"] > 0


def test_overlapping_client_blocks_rejected():
    sim = Simulator(seed=95)
    mux, external, exps = build_world(sim, clients=1)
    t1, t2 = DirectTransport.pair(sim)
    with pytest.raises(ValueError):
        mux.add_client("evil", t2, 65999, allowed="198.18.1.0/25")


def test_client_block_must_be_inside_vini_allocation():
    sim = Simulator(seed=96)
    mux = BGPMultiplexer(sim, 64512, "198.18.0.1", vini_block="198.18.0.0/16")
    t1, t2 = DirectTransport.pair(sim)
    with pytest.raises(ValueError):
        mux.add_client("out", t2, 65000, allowed="203.0.113.0/24")


def test_experiments_isolated_from_each_other_via_mux():
    """Each experiment's announcements reach the other through the mux."""
    sim = Simulator(seed=97)
    mux, external, exps = build_world(sim)
    exps[0].originate("198.18.1.0/24")
    sim.run(until=20.0)
    # exp1 sees exp0's prefix (the mux is a speaker, not a reflector
    # suppressor, for eBGP clients).
    assert exps[1].best("198.18.1.0/24") is not None


def test_single_external_session_only():
    sim = Simulator(seed=98)
    mux, external, exps = build_world(sim)
    t1, t2 = DirectTransport.pair(sim)
    with pytest.raises(RuntimeError):
        mux.attach_external(t2, 7018)
