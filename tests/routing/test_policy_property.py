"""Property battery: Gao-Rexford policy correctness, by definition.

Hypothesis draws random small AS graphs (provider edges oriented from
lower to higher ASN, so the provider-customer hierarchy is acyclic, as
Gao-Rexford assumes; peer edges anywhere else), converges the
AS-level-only instantiation, and asserts the two theorems the policy
layer exists to enforce:

* every selected path is **valley-free** (an AS never transits traffic
  between two of its providers/peers), and
* selection is **prefer-customer consistent** (no daemon picks a
  peer/provider route while a customer route for the same prefix sits
  in an Adj-RIB-In).

On failure Hypothesis shrinks to a minimal violating topology — the
counterexample *is* the bug report.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.net.addr import prefix
from repro.routing.policy import (
    CUSTOMER,
    LOCAL_PREF,
    ORIGIN_LOCAL_PREF,
    PEER,
    PROVIDER,
    is_valley_free,
)
from repro.sim.engine import Simulator
from repro.topologies.internet import build_policy_graph

MAX_AS = 6
CONVERGE_AT = 40.0  # mrai 0.1, delay 5 ms: ample for <= 6 hops

NONE, TRANSIT_REL, PEER_REL = 0, 1, 2


@st.composite
def as_graphs(draw):
    """(n_as, transit_edges, peer_edges): every unordered AS pair is
    independently absent, provider->customer (low ASN provides), or
    peer. Low->high transit orientation keeps the hierarchy acyclic."""
    n_as = draw(st.integers(min_value=2, max_value=MAX_AS))
    pairs = [
        (a, b)
        for a in range(1, n_as + 1)
        for b in range(a + 1, n_as + 1)
    ]
    kinds = draw(
        st.lists(
            st.sampled_from([NONE, TRANSIT_REL, PEER_REL]),
            min_size=len(pairs), max_size=len(pairs),
        )
    )
    transit = [p for p, k in zip(pairs, kinds) if k == TRANSIT_REL]
    peer = [p for p, k in zip(pairs, kinds) if k == PEER_REL]
    return n_as, transit, peer


def _rel_of(transit, peer):
    """(a, b) -> b's relationship to a, as is_valley_free expects."""
    rels = {}
    for provider, customer in transit:
        rels[(provider, customer)] = CUSTOMER
        rels[(customer, provider)] = PROVIDER
    for a, b in peer:
        rels[(a, b)] = PEER
        rels[(b, a)] = PEER
    return lambda a, b: rels.get((a, b))


@settings(max_examples=40, deadline=None)
@given(as_graphs())
def test_converged_paths_are_valley_free_and_prefer_customer(graph):
    n_as, transit, peer = graph
    sim = Simulator(seed=0)
    daemons, _policies = build_policy_graph(sim, n_as, transit, peer)
    sim.run(until=CONVERGE_AT)
    rel_of = _rel_of(transit, peer)

    for asn, daemon in daemons.items():
        for origin in range(1, n_as + 1):
            if origin == asn:
                continue
            key = prefix(f"99.{origin}.0.0/16").key
            found = daemon.loc_rib.get(key)
            if found is None:
                continue  # unreachable under policy — that's allowed
            best, learned_from = found

            # Theorem 1: the full path, listener first, is valley-free.
            path = (asn,) + tuple(best.as_path)
            assert path[-1] == origin
            assert is_valley_free(path, rel_of), (
                f"valley: as{asn} uses {path} "
                f"(transit={transit}, peer={peer})"
            )

            # Theorem 2: no candidate in any Adj-RIB-In beats the
            # chosen route's relationship class.
            candidates = [
                session.adj_rib_in[key]
                for session in daemon.sessions
                if key in session.adj_rib_in
            ]
            assert best.local_pref == max(c.local_pref for c in candidates), (
                f"as{asn} chose local_pref {best.local_pref} for "
                f"99.{origin}.0.0/16 but holds a better candidate "
                f"(transit={transit}, peer={peer})"
            )


@settings(max_examples=25, deadline=None)
@given(as_graphs())
def test_customers_of_a_common_provider_reach_each_other(graph):
    """Reachability floor: inside one connected customer cone, policy
    never isolates two ASes (customer routes are exported to everyone)."""
    n_as, transit, peer = graph
    sim = Simulator(seed=0)
    daemons, _policies = build_policy_graph(sim, n_as, transit, peer)
    sim.run(until=CONVERGE_AT)
    for provider, customer in transit:
        key = prefix(f"99.{customer}.0.0/16").key
        assert key in daemons[provider].loc_rib, (
            f"as{provider} cannot reach customer as{customer}"
        )
        key = prefix(f"99.{provider}.0.0/16").key
        assert key in daemons[customer].loc_rib, (
            f"as{customer} cannot reach provider as{provider}"
        )


def test_shrunk_counterexample_shape():
    """The classic minimal valley: a stub transiting two providers.

    as1 and as3 both provide transit to as2; a path as1 -> as2 -> as3
    would be a valley. Assert policy suppresses it (as2 never exports
    a provider-learned route to another provider) — and that
    is_valley_free itself flags the hypothetical path, so the property
    above is testing the right predicate."""
    sim = Simulator(seed=0)
    transit = [(1, 2), (3, 2)]
    daemons, _policies = build_policy_graph(sim, 3, transit, [])
    sim.run(until=CONVERGE_AT)
    rel_of = _rel_of(transit, [])
    assert not is_valley_free((1, 2, 3), rel_of)
    found = daemons[1].loc_rib.get(prefix("99.3.0.0/16").key)
    assert found is None, f"as1 reaches as3 via {found[0].as_path}"
    assert daemons[2].loc_rib.get(prefix("99.3.0.0/16").key) is not None
