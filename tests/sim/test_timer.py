"""Unit tests for PeriodicTimer and Timeout."""

import pytest

from repro.sim import PeriodicTimer, Simulator, Timeout


def test_periodic_timer_fires_each_interval():
    sim = Simulator()
    times = []
    PeriodicTimer(sim, 2.0, lambda: times.append(sim.now))
    sim.run(until=7.0)
    assert times == [2.0, 4.0, 6.0]


def test_periodic_timer_stop():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
    sim.at(2.5, timer.stop)
    sim.run(until=10.0)
    assert times == [1.0, 2.0]
    assert not timer.running


def test_periodic_timer_restart_after_stop():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
    sim.at(1.5, timer.stop)
    sim.at(5.0, timer.start)
    sim.run(until=7.5)
    assert times == [1.0, 6.0, 7.0]


def test_periodic_timer_jitter_bounds():
    sim = Simulator(seed=7)
    times = []
    PeriodicTimer(sim, 10.0, lambda: times.append(sim.now), jitter=0.25)
    sim.run(until=100.0)
    gaps = [b - a for a, b in zip([0.0] + times, times)]
    assert all(7.5 <= gap <= 10.0 for gap in gaps)
    assert len(set(round(g, 6) for g in gaps)) > 1  # actually jittered


def test_periodic_timer_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 0.0, lambda: None)
    with pytest.raises(ValueError):
        PeriodicTimer(sim, 1.0, lambda: None, jitter=1.0)


def test_timeout_fires_once():
    sim = Simulator()
    fired = []
    timeout = Timeout(sim, 3.0, lambda: fired.append(sim.now))
    timeout.start()
    sim.run(until=10.0)
    assert fired == [3.0]
    assert not timeout.armed


def test_timeout_restart_extends_deadline():
    sim = Simulator()
    fired = []
    timeout = Timeout(sim, 3.0, lambda: fired.append(sim.now))
    timeout.start()
    sim.at(2.0, timeout.restart)  # push deadline to t=5
    sim.run(until=10.0)
    assert fired == [5.0]


def test_timeout_cancel():
    sim = Simulator()
    fired = []
    timeout = Timeout(sim, 3.0, lambda: fired.append(sim.now))
    timeout.start()
    sim.at(1.0, timeout.cancel)
    sim.run(until=10.0)
    assert fired == []


def test_timeout_expires_at():
    sim = Simulator()
    timeout = Timeout(sim, 4.0, lambda: None)
    timeout.start()
    assert timeout.expires_at == 4.0
    timeout.cancel()
    assert timeout.expires_at is None


def test_periodic_timer_reuses_one_event_object():
    """The hot path allocates no Event per tick: fixed-period timers ride
    one engine-rearmed periodic event."""
    sim = Simulator()
    timer = PeriodicTimer(sim, 0.5, lambda: None)
    event = timer._event
    sim.run(until=10.0)
    assert timer._event is event
    assert event.active


def test_jittered_timer_reuses_one_event_object():
    sim = Simulator(seed=3)
    timer = PeriodicTimer(sim, 0.5, lambda: None, jitter=0.2)
    event = timer._event
    sim.run(until=10.0)
    assert timer._event is event


def test_periodic_timer_stop_from_callback():
    sim = Simulator()
    times = []

    def tick():
        times.append(sim.now)
        if len(times) == 3:
            timer.stop()

    timer = PeriodicTimer(sim, 1.0, tick)
    sim.run(until=10.0)
    assert times == [1.0, 2.0, 3.0]
    assert sim.pending == 0


def test_periodic_timer_reschedule_changes_interval():
    sim = Simulator()
    times = []
    timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
    sim.at(2.5, timer.reschedule, 0.25)
    sim.run(until=3.76)
    assert times == [1.0, 2.0, 2.75, 3.0, 3.25, 3.5, 3.75]
