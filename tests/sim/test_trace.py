"""Unit tests for the trace collector."""

from repro.sim import Simulator


def test_log_records_time_and_fields():
    sim = Simulator()
    sim.at(2.0, lambda: sim.trace.log("ping", rtt=0.076, dst="seattle"))
    sim.run()
    (record,) = sim.trace.records
    assert record.time == 2.0
    assert record.kind == "ping"
    assert record["rtt"] == 0.076
    assert record.get("missing", 13) == 13


def test_select_filters_by_kind_and_fields():
    sim = Simulator()
    sim.trace.log("drop", node="a")
    sim.trace.log("drop", node="b")
    sim.trace.log("send", node="a")
    assert sim.trace.count("drop") == 2
    assert sim.trace.count("drop", node="a") == 1
    assert [r["node"] for r in sim.trace.select("drop")] == ["a", "b"]


def test_subscribe_and_unsubscribe():
    sim = Simulator()
    seen = []
    callback = seen.append
    sim.trace.subscribe("x", callback)
    sim.trace.log("x", n=1)
    sim.trace.unsubscribe("x", callback)
    sim.trace.log("x", n=2)
    assert [r["n"] for r in seen] == [1]


def test_disabled_collector_drops_records():
    sim = Simulator()
    sim.trace.enabled = False
    assert sim.trace.log("x") is None
    assert len(sim.trace) == 0


def test_clear():
    sim = Simulator()
    sim.trace.log("x")
    sim.trace.clear()
    assert len(sim.trace) == 0
