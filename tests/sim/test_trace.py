"""Unit tests for the trace collector."""

from repro.sim import Simulator


def test_log_records_time_and_fields():
    sim = Simulator()
    sim.at(2.0, lambda: sim.trace.log("ping", rtt=0.076, dst="seattle"))
    sim.run()
    (record,) = sim.trace.records
    assert record.time == 2.0
    assert record.kind == "ping"
    assert record["rtt"] == 0.076
    assert record.get("missing", 13) == 13


def test_select_filters_by_kind_and_fields():
    sim = Simulator()
    sim.trace.log("drop", node="a")
    sim.trace.log("drop", node="b")
    sim.trace.log("send", node="a")
    assert sim.trace.count("drop") == 2
    assert sim.trace.count("drop", node="a") == 1
    assert [r["node"] for r in sim.trace.select("drop")] == ["a", "b"]


def test_subscribe_and_unsubscribe():
    sim = Simulator()
    seen = []
    callback = seen.append
    sim.trace.subscribe("x", callback)
    sim.trace.log("x", n=1)
    sim.trace.unsubscribe("x", callback)
    sim.trace.log("x", n=2)
    assert [r["n"] for r in seen] == [1]


def test_disabled_collector_drops_records():
    sim = Simulator()
    sim.trace.enabled = False
    assert sim.trace.log("x") is None
    assert len(sim.trace) == 0


def test_clear():
    sim = Simulator()
    sim.trace.log("x")
    sim.trace.clear()
    assert len(sim.trace) == 0


# ----------------------------------------------------------------------
# Fast-path regression guards: per-kind enablement, per-kind index.
# ----------------------------------------------------------------------
def test_disabled_kind_allocates_no_record():
    sim = Simulator()
    seen = []
    sim.trace.subscribe("hot", seen.append)
    sim.trace.disable("hot")
    assert sim.trace.log("hot", n=1) is None
    assert len(sim.trace.records) == 0
    assert sim.trace.count("hot") == 0
    assert seen == []  # subscribers not fired for a disabled kind
    assert not sim.trace.wants("hot")
    # Other kinds are unaffected.
    assert sim.trace.log("cold", n=1) is not None
    assert sim.trace.wants("cold")


def test_enable_after_disable_round_trips():
    sim = Simulator()
    seen = []
    callback = seen.append
    sim.trace.subscribe("x", callback)
    sim.trace.disable("x")
    sim.trace.log("x", n=1)
    sim.trace.enable("x")
    sim.trace.log("x", n=2)
    sim.trace.unsubscribe("x", callback)
    sim.trace.log("x", n=3)
    assert [r["n"] for r in seen] == [2]
    assert [r["n"] for r in sim.trace.select("x")] == [2, 3]


def test_select_uses_per_kind_index():
    sim = Simulator()
    for i in range(5):
        sim.trace.log("a", i=i)
        sim.trace.log("b", i=i)
    assert [r["i"] for r in sim.trace.select("a")] == list(range(5))
    assert sim.trace.count("b") == 5
    assert sim.trace.count("b", i=3) == 1
    sim.trace.clear()
    assert sim.trace.count("a") == 0
    assert list(sim.trace.select("a")) == []


def test_global_disable_still_wins():
    sim = Simulator()
    sim.trace.enabled = False
    assert sim.trace.log("x") is None
    assert not sim.trace.wants("x")
    sim.trace.enabled = True
    assert sim.trace.log("x") is not None
