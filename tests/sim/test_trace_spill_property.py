"""Hypothesis battery for the struct-packed trace spill format under
the lazy columnar decoder.

The wire format round-trips every value kind, interns strings once per
file, appends safely across incremental spills, and the streaming
decoder (``iter_spill``) must agree with the eager one on every filter
combination while failing loudly — never silently — on truncation.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Simulator
from repro.sim.trace import (
    _SPILL_MAGIC,
    iter_spill,
    read_spill,
)

# Field values: every kind the format encodes losslessly. NaN is
# excluded (NaN != NaN would fail the equality check, not the codec);
# ints cover both the fixed i64 lane and the decimal bigint overflow.
_i64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_big = st.integers(min_value=2**63, max_value=2**80) | st.integers(
    min_value=-(2**80), max_value=-(2**63) - 1)
_floats = st.floats(allow_nan=False)
_text = st.text(max_size=20)
_value = st.one_of(_i64, _big, _floats, _text, st.booleans(), st.none())

_name = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1, max_size=8)
# "kind"/"self" cannot be **field names: they collide with log()'s own
# positional parameters — an API constraint, not a format one.
_field_name = _name.filter(lambda s: s not in ("kind", "self"))
_fields = st.dictionaries(_field_name, _value, max_size=5)
_times = st.floats(min_value=0.0, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
_record = st.tuples(_times, _name, _fields)
_records = st.lists(_record, min_size=1, max_size=30).map(
    lambda specs: sorted(specs, key=lambda s: s[0]))


def _fill(sim, specs):
    for time, kind, fields in specs:
        sim.now = time  # drive the collector clock directly
        sim.trace.log(kind, **fields)


@settings(max_examples=50, deadline=None)
@given(_records)
def test_spill_round_trips_all_value_kinds(tmp_path_factory, specs):
    tmp = tmp_path_factory.mktemp("spill")
    sim = Simulator()
    _fill(sim, specs)
    originals = [(r.time, r.kind, r.fields) for r in sim.trace.records]
    path = str(tmp / "trace.bin")
    assert sim.trace.spill_to(path) == len(specs)
    loaded = [(r.time, r.kind, r.fields) for r in read_spill(path)]
    assert loaded == originals
    for record, (_, _, fields) in zip(read_spill(path), specs):
        for key, value in fields.items():
            got = record.fields[key]
            assert type(got) is type(value), (key, value, got)


@settings(max_examples=25, deadline=None)
@given(_records, st.data())
def test_incremental_spills_byte_equal_one_shot(tmp_path_factory, specs,
                                                data):
    tmp = tmp_path_factory.mktemp("spill")
    cut = data.draw(st.integers(min_value=0, max_value=len(specs)))

    whole = Simulator()
    _fill(whole, specs)
    whole_path = str(tmp / "whole.bin")
    whole.trace.spill_to(whole_path)

    split = Simulator()
    split_path = str(tmp / "split.bin")
    _fill(split, specs[:cut])
    split.trace.spill_to(split_path)  # may be the empty prefix
    _fill(split, specs[cut:])
    split.trace.spill_to(split_path)

    with open(whole_path, "rb") as a, open(split_path, "rb") as b:
        assert a.read() == b.read()


@settings(max_examples=25, deadline=None)
@given(_records)
def test_strings_intern_once_per_file(tmp_path_factory, specs):
    tmp = tmp_path_factory.mktemp("spill")
    sim = Simulator()
    _fill(sim, specs)
    path = str(tmp / "trace.bin")
    sim.trace.spill_to(path)

    defines = {0x01: 0, 0x02: 0}
    with open(path, "rb") as handle:
        assert handle.read(len(_SPILL_MAGIC)) == _SPILL_MAGIC
        data = handle.read()
    # Walk the frame stream counting define frames; record frames are
    # skipped with the same tagged-length rules the decoder uses.
    offset = 0
    while offset < len(data):
        tag = data[offset]
        offset += 1
        if tag in (0x01, 0x02):
            defines[tag] += 1
            (length,) = struct.unpack_from("<H", data, offset + 2)
            offset += 4 + length
        else:
            assert tag == 0x03
            (nfields,) = struct.unpack_from("<H", data, offset + 10)
            offset += 12
            for _ in range(nfields):
                vtag = data[offset + 2]
                offset += 3
                if vtag in (0x10, 0x12):
                    offset += 8
                elif vtag == 0x14:
                    offset += 1
                elif vtag != 0x15:
                    (length,) = struct.unpack_from("<I", data, offset)
                    offset += 4 + length
    kinds = {kind for _, kind, _ in specs}
    names = {name for _, _, fields in specs for name in fields}
    assert defines[0x01] == len(kinds)
    assert defines[0x02] == len(names)


@settings(max_examples=25, deadline=None)
@given(_records, st.data())
def test_truncation_raises_or_yields_strict_prefix(tmp_path_factory,
                                                   specs, data):
    tmp = tmp_path_factory.mktemp("spill")
    sim = Simulator()
    _fill(sim, specs)
    path = str(tmp / "full.bin")
    sim.trace.spill_to(path)
    full = read_spill(path)
    blob = open(path, "rb").read()

    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    cut_path = str(tmp / "cut.bin")
    with open(cut_path, "wb") as handle:
        handle.write(blob[:cut])
    try:
        loaded = read_spill(cut_path)
    except ValueError:
        return  # loud failure is always acceptable
    # A silent success must be a clean frame boundary: a strict prefix
    # of the original records, never garbage or reordered data.
    assert len(loaded) < len(full)
    assert loaded == full[: len(loaded)]


@settings(max_examples=25, deadline=None)
@given(_records, st.data())
def test_lazy_pushdown_equals_post_hoc_filtering(tmp_path_factory, specs,
                                                 data):
    tmp = tmp_path_factory.mktemp("spill")
    sim = Simulator()
    _fill(sim, specs)
    path = str(tmp / "trace.bin")
    sim.trace.spill_to(path)
    full = read_spill(path)

    kinds = data.draw(st.none() | st.sets(
        st.sampled_from(sorted({k for _, k, _ in specs}))))
    all_names = sorted({n for _, _, f in specs for n in f})
    fields = data.draw(st.none() | st.sets(st.sampled_from(all_names))) \
        if all_names else None
    times = sorted({t for t, _, _ in specs})
    t0 = data.draw(st.none() | st.sampled_from(times))
    t1 = data.draw(st.none() | st.sampled_from(times))

    pushed = list(iter_spill(path, kinds=kinds, fields=fields,
                             t0=t0, t1=t1))
    expected = []
    for record in full:
        if kinds is not None and record.kind not in kinds:
            continue
        if t0 is not None and record.time < t0:
            continue
        if t1 is not None and record.time >= t1:
            continue
        keep = record.fields if fields is None else {
            k: v for k, v in record.fields.items() if k in fields}
        expected.append((record.time, record.kind, keep))
    assert [(r.time, r.kind, r.fields) for r in pushed] == expected


def test_iter_spill_is_lazy_about_errors(tmp_path):
    """The generator yields clean records before raising on a torn
    tail, so a streaming consumer sees data up to the corruption."""
    sim = Simulator()
    for i in range(5):
        sim.now = float(i)
        sim.trace.log("tick", n=i)
    path = str(tmp_path / "t.bin")
    sim.trace.spill_to(path)
    blob = open(path, "rb").read()
    torn = str(tmp_path / "torn.bin")
    with open(torn, "wb") as handle:
        handle.write(blob[:-3])
    it = iter_spill(torn)
    seen = []
    with pytest.raises(ValueError, match="truncated"):
        for record in it:
            seen.append(record.fields["n"])
    assert seen == [0, 1, 2, 3]
