"""Golden-trace determinism: the timer-wheel engine must produce the
byte-identical event order and trace as the heap-only engine.

The hot-path overhaul (timer wheel + overflow heap + in-place periodic
rescheduling) is only admissible because it is *unobservable*: same
seed, same schedule calls, same firing order, same timestamps. These
tests drive both engines through a workload that exercises every nasty
path — same-time ties, call_soon storms from inside slot drains,
cancellation churn, events past the wheel horizon, run(until=...)
resumption — and diff the serialized traces.
"""

import pytest

from repro.sim import PeriodicTimer, Simulator, Timeout


def _serialize(sim: Simulator) -> str:
    return "\n".join(
        f"{r.time:.9f} {r.kind} {sorted(r.fields.items())!r}" for r in sim.trace.records
    )


def _torture_workload(sim: Simulator) -> None:
    """A mixed workload touching every scheduling path."""
    log = sim.trace.log

    # Periodic timers: fixed (native periodic events) and jittered
    # (timer rescheduled in place, drawing from the rng stream).
    for i, interval in enumerate((0.003, 0.01, 0.0501, 0.24, 1.0)):
        PeriodicTimer(sim, interval, lambda i=i: log("tick", timer=i))
    for i, interval in enumerate((0.02, 0.77)):
        PeriodicTimer(sim, interval, lambda i=i: log("jtick", timer=i), jitter=0.3)

    # A hello/dead pair: the timeout is restarted on every hello,
    # littering the queues with cancelled events.
    dead = Timeout(sim, 1.3, lambda: log("dead"))
    dead.start()

    def hello():
        log("hello")
        dead.restart()

    PeriodicTimer(sim, 0.4, hello)

    # Same-time ties and call_soon chains from inside a drain.
    def burst(depth: int):
        log("burst", depth=depth)
        if depth:
            sim.call_soon(burst, depth - 1)
            sim.at(0.0005, burst, 0)

    for t in (0.1, 0.1, 2.5):
        sim.schedule(t, burst, 2)

    # Events far past the wheel horizon (overflow heap), one of which
    # reschedules short-horizon work when it fires.
    def far():
        log("far")
        sim.at(0.002, lambda: log("far_child"))

    sim.at(60.0, far)
    sim.at(90.0, lambda: log("far2"))

    # Cancellations, including cancel-from-the-same-timestamp.
    doomed = [sim.at(5.0 + 0.001 * i, lambda i=i: log("doomed", i=i)) for i in range(50)]

    def reap():
        log("reap")
        for event in doomed:
            event.cancel()

    sim.at(4.9, reap)
    same_t = sim.at(7.0, lambda: log("never"))
    sim.schedule(7.0, same_t.cancel)  # earlier seq at the same time wins

    # Random-stream consumers interleaved with the timers.
    def draw():
        log("draw", value=round(sim.rng("load").random(), 12))

    PeriodicTimer(sim, 0.33, draw)


@pytest.mark.parametrize("seed", [0, 7])
def test_wheel_and_heap_traces_are_byte_identical(seed):
    traces = {}
    for wheel in (True, False):
        sim = Simulator(seed=seed, wheel=wheel)
        _torture_workload(sim)
        sim.run(until=120.0)
        traces[wheel] = _serialize(sim)
    assert traces[True] == traces[False]
    assert traces[True]  # non-trivial workload actually ran


def test_chunked_run_matches_single_run():
    """run(until=...) resumption (mid-slot pushback) changes nothing."""
    whole = Simulator(seed=3)
    _torture_workload(whole)
    whole.run(until=100.0)

    chunked = Simulator(seed=3)
    _torture_workload(chunked)
    t = 0.0
    for step in (0.0001, 0.05, 0.1003, 1.0, 2.31, 10.0, 40.0, 46.5396):
        t += step
        chunked.run(until=t)
    assert t == pytest.approx(100.0)
    assert _serialize(whole) == _serialize(chunked)
    assert whole.pending == chunked.pending


def test_wheel_run_is_reproducible():
    runs = []
    for _ in range(2):
        sim = Simulator(seed=11)
        _torture_workload(sim)
        sim.run(until=50.0)
        runs.append(_serialize(sim))
    assert runs[0] == runs[1]


def test_scenario_trace_identical_across_engines():
    """A real multi-node scenario (OSPF + traffic) is engine-invariant."""
    from repro.core import VINI

    def build_and_run(wheel: bool) -> str:
        Simulator.default_wheel = wheel
        try:
            vini = VINI(seed=5)
            for name in ("a", "b", "c"):
                vini.add_node(name)
            vini.connect("a", "b", bandwidth=10e6, delay=0.01)
            vini.connect("b", "c", bandwidth=10e6, delay=0.02)
            vini.install_underlay_routes()
            from repro.tools.ping import Ping

            ping = Ping(vini.nodes["a"], vini.nodes["c"].address,
                        count=20, interval=0.5)
            ping.start()
            vini.run(until=30.0)
            return _serialize(vini.sim)
        finally:
            Simulator.default_wheel = True

    assert build_and_run(True) == build_and_run(False)
