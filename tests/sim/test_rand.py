"""Unit tests for deterministic random streams."""

from repro.sim.rand import RandomStreams


def test_same_seed_same_stream():
    a = RandomStreams(1).stream("x")
    b = RandomStreams(1).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_streams_are_independent_of_creation_order():
    streams_a = RandomStreams(1)
    streams_b = RandomStreams(1)
    # Create in different orders; draws must match per name.
    xa = streams_a.stream("x")
    ya = streams_a.stream("y")
    yb = streams_b.stream("y")
    xb = streams_b.stream("x")
    assert xa.random() == xb.random()
    assert ya.random() == yb.random()


def test_stream_instance_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("x") is streams.stream("x")


def test_fork_gives_stable_namespaced_streams():
    child_a = RandomStreams(1).fork("exp")
    child_b = RandomStreams(1).fork("exp")
    assert child_a.stream("x").random() == child_b.stream("x").random()
    # Different fork name, different sequence.
    other = RandomStreams(1).fork("other")
    assert other.stream("x").random() != RandomStreams(1).fork("exp").stream("x").random()


def test_stream_names_decorrelated():
    streams = RandomStreams(0)
    draws_x = [streams.stream("x").random() for _ in range(5)]
    draws_y = [streams.stream("y").random() for _ in range(5)]
    assert draws_x != draws_y
