"""Round-trip tests for the binary trace spill format."""

import pytest

from repro.sim import Simulator
from repro.sim.trace import _SPILL_MAGIC, read_spill


def test_spill_round_trips_every_value_type(tmp_path):
    sim = Simulator()
    path = str(tmp_path / "trace.bin")
    sim.trace.log(
        "mixed",
        i=42,
        neg=-7,
        big=1 << 100,
        f=0.07612345,
        s="denver→kc",  # non-ASCII survives utf-8
        t=True,
        nope=False,
        n=None,
    )
    sim.trace.log("other", obj=(1, 2))  # repr fallback
    originals = list(sim.trace.records)
    assert sim.trace.spill_to(path) == 2
    assert len(sim.trace) == 0  # spilled records left memory

    loaded = read_spill(path)
    assert len(loaded) == 2
    first, second = loaded
    assert first.time == originals[0].time
    assert first.kind == "mixed"
    assert first.fields == {
        "i": 42, "neg": -7, "big": 1 << 100, "f": 0.07612345,
        "s": "denver→kc", "t": True, "nope": False, "n": None,
    }
    assert isinstance(first["t"], bool)  # not collapsed to int
    assert isinstance(first["i"], int) and not isinstance(first["i"], bool)
    assert second.fields == {"obj": repr((1, 2))}  # lossy by contract


def test_incremental_spills_equal_one_big_spill(tmp_path):
    def populate(sim):
        for i in range(10):
            sim.trace.log("tick", n=i, node=f"n{i % 3}")

    one = Simulator()
    populate(one)
    one_path = str(tmp_path / "one.bin")
    one.trace.spill_to(one_path)

    many = Simulator()
    many_path = str(tmp_path / "many.bin")
    for i in range(10):
        many.trace.log("tick", n=i, node=f"n{i % 3}")
        many.trace.spill_to(many_path)  # interned tables carry across

    with open(one_path, "rb") as a, open(many_path, "rb") as b:
        assert a.read() == b.read()
    assert read_spill(one_path) == read_spill(many_path)


def test_spill_preserves_simulated_timestamps(tmp_path):
    sim = Simulator()
    sim.at(1.25, lambda: sim.trace.log("a", x=1))
    sim.at(2.5, lambda: sim.trace.log("b"))
    sim.run()
    path = str(tmp_path / "t.bin")
    sim.trace.spill_to(path)
    loaded = read_spill(path)
    assert [(r.time, r.kind) for r in loaded] == [(1.25, "a"), (2.5, "b")]
    assert loaded[1].fields == {}


def test_spill_empty_collector_writes_valid_file(tmp_path):
    sim = Simulator()
    path = str(tmp_path / "empty.bin")
    assert sim.trace.spill_to(path) == 0
    assert read_spill(path) == []


def test_spill_is_much_smaller_than_repr(tmp_path):
    sim = Simulator()
    for i in range(1000):
        sim.trace.log("pkt", node="newyork", uid=i, length=1430, rtt=0.0761)
    text_size = sum(len(repr(r)) for r in sim.trace.records)
    path = str(tmp_path / "big.bin")
    sim.trace.spill_to(path)
    import os

    assert os.path.getsize(path) < text_size * 0.75


def test_read_spill_rejects_garbage(tmp_path):
    path = tmp_path / "bad.bin"
    path.write_bytes(b"not a spill file at all")
    with pytest.raises(ValueError, match="not a trace spill"):
        read_spill(str(path))
    truncated = tmp_path / "trunc.bin"
    sim = Simulator()
    sim.trace.log("x", n=1)
    good = tmp_path / "good.bin"
    sim.trace.spill_to(str(good))
    data = good.read_bytes()
    truncated.write_bytes(data[: len(data) - 3])
    with pytest.raises(ValueError, match="truncated"):
        read_spill(str(truncated))


def test_spill_interning_does_not_leak_across_paths(tmp_path):
    """Each destination file gets its own string tables: a fresh path
    after spilling elsewhere is still self-contained."""
    sim = Simulator()
    sim.trace.log("kind_a", field=1)
    sim.trace.spill_to(str(tmp_path / "a.bin"))
    sim.trace.log("kind_a", field=2)
    sim.trace.spill_to(str(tmp_path / "b.bin"))
    loaded = read_spill(str(tmp_path / "b.bin"))
    assert len(loaded) == 1
    assert loaded[0].kind == "kind_a"
    assert loaded[0].fields == {"field": 2}


def test_autospill_spills_during_run_and_tail_completes(tmp_path):
    """With autospill armed, the collector drains itself to disk at the
    threshold; spilling the tail afterwards yields a file equal to one
    big end-of-run spill (the format is append-safe)."""
    auto = Simulator()
    auto_path = str(tmp_path / "auto.bin")
    auto.trace.autospill(auto_path, threshold=7)

    def populate(sim):
        for i in range(25):
            sim.at(float(i), lambda i=i: sim.trace.log("tick", n=i))

    populate(auto)
    auto.run()
    assert len(auto.trace) < 7  # drained mid-run, never past threshold
    auto.trace.spill_to(auto_path)  # flush the tail
    assert len(auto.trace) == 0

    ref = Simulator()
    populate(ref)
    ref.run()
    ref_path = str(tmp_path / "ref.bin")
    ref.trace.spill_to(ref_path)

    with open(auto_path, "rb") as a, open(ref_path, "rb") as b:
        assert a.read() == b.read()
    assert [r.fields["n"] for r in read_spill(auto_path)] == list(range(25))


def test_autospill_disarm_and_validation(tmp_path):
    sim = Simulator()
    path = str(tmp_path / "t.bin")
    sim.trace.autospill(path, threshold=2)
    sim.trace.autospill("", threshold=None)  # disarm
    for i in range(10):
        sim.trace.log("tick", n=i)
    assert len(sim.trace) == 10  # nothing spilled once disarmed
    with pytest.raises(ValueError):
        sim.trace.autospill(path, threshold=0)
