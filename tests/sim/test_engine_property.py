"""Property test: timer-structure equivalence.

The engine promises a strict (time, seq) total order regardless of
which structure holds a timer — overflow heap, single-level wheel, or
a hierarchical wheel with cascading upper levels. This generates
random workloads (mixed near/far deadlines, chained scheduling,
cancels, reschedules, periodics, chunked runs) and asserts the fire
log is *exactly* identical — same tags, same float times — across all
configurations, including a deliberately tiny geometry that forces
heavy cascading and slot-mask collisions.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Simulator

# (delay, action, aux, period) per timer:
#   action 0: plain one-shot
#   action 1: one-shot that schedules a follow-up +aux from its fire
#   action 2: one-shot cancelled at absolute time aux (maybe too late)
#   action 3: periodic(period), cancelled at absolute time aux
#   action 4: one-shot that reschedules itself once to now+aux
_delays = st.floats(min_value=0.0, max_value=50_000.0,
                    allow_nan=False, allow_infinity=False)
_aux = st.floats(min_value=0.0, max_value=600.0,
                 allow_nan=False, allow_infinity=False)
_periods = st.floats(min_value=1.0, max_value=300.0,
                     allow_nan=False, allow_infinity=False)
_timer = st.tuples(_delays, st.integers(min_value=0, max_value=4),
                   _aux, _periods)
_workload = st.lists(_timer, min_size=1, max_size=25)
_chunks = st.lists(st.floats(min_value=0.0, max_value=60_000.0,
                             allow_nan=False, allow_infinity=False),
                   max_size=3).map(sorted)


def _schedule_workload(sim, spec, log):
    events = {}
    for i, (delay, action, aux, period) in enumerate(spec):
        if action == 0:
            events[i] = sim.at(delay, lambda i=i: log.append((i, sim.now)))
        elif action == 1:
            def chained(i=i, aux=aux):
                log.append((i, sim.now))
                sim.at(aux, lambda i=i: log.append((i, sim.now, "follow")))
            events[i] = sim.at(delay, chained)
        elif action == 2:
            event = sim.at(delay, lambda i=i: log.append((i, sim.now)))
            events[i] = event
            sim.at(aux, event.cancel)
        elif action == 3:
            event = sim.schedule_periodic(
                period, lambda i=i: log.append((i, sim.now))
            )
            sim.at(aux, event.cancel)
        elif action == 4:
            once = []
            def rearming(i=i, aux=aux, once=once):
                log.append((i, sim.now))
                if not once:
                    once.append(1)
                    sim.reschedule(events[i], sim.now + aux)
            events[i] = sim.at(delay, rearming)


def _run_workload(spec, chunks, **sim_kwargs):
    sim = Simulator(seed=7, **sim_kwargs)
    log = []
    _schedule_workload(sim, spec, log)
    for until in chunks:
        sim.run(until=until)
    sim.run()
    return log


def _run_workload_stop_step(spec, chunks, stops, steps, **sim_kwargs):
    """Drain the workload while interleaving stop(), run(until), step().

    Each stop() may end a run(until) chunk early; the final drain loops
    run() once per possible stop so the queue always empties.
    """
    sim = Simulator(seed=7, **sim_kwargs)
    log = []
    _schedule_workload(sim, spec, log)
    for t in stops:
        sim.at(t, sim.stop)
    for until in chunks:
        sim.run(until=until)
        for _ in range(steps):
            if not sim.step():
                break
        log.append(("clock", sim.now))
    for _ in range(len(stops) + 1):
        sim.run()
        log.append(("clock", sim.now))
    return log


@settings(max_examples=25, deadline=None)
@given(spec=_workload, chunks=_chunks)
def test_fire_order_identical_across_timer_structures(spec, chunks):
    reference = _run_workload(spec, chunks, wheel=False)
    # Single-level wheel (everything far goes through the heap).
    assert _run_workload(spec, chunks, wheel_levels=1) == reference
    # Hierarchical wheel, default geometry.
    assert _run_workload(spec, chunks) == reference
    # Tiny geometry: level-0 horizon 0.16s, upper levels 8 slots each,
    # so nearly every timer parks in an upper level or the heap and
    # most slots share a mask — maximal cascade pressure.
    assert _run_workload(
        spec, chunks,
        wheel_width=0.01, wheel_slots=16,
        wheel_levels=3, wheel_upper_slots=8,
    ) == reference


_stops = st.lists(st.floats(min_value=0.0, max_value=60_000.0,
                            allow_nan=False, allow_infinity=False),
                  max_size=3)


@settings(max_examples=25, deadline=None)
@given(spec=_workload, chunks=_chunks, stops=_stops,
       steps=st.integers(min_value=0, max_value=4))
def test_stop_step_interleaving_identical_across_structures(spec, chunks,
                                                            stops, steps):
    # Regression guard: run(until) ended by stop() must not advance the
    # clock past still-pending events — the wheel scan-start clamp
    # assumes live level-0 bins never sit below int(now/width), so a
    # stale fast-forward reordered fires and sent the clock backwards.
    reference = _run_workload_stop_step(spec, chunks, stops, steps,
                                        wheel=False)
    times = [entry[1] for entry in reference]
    assert times == sorted(times)  # clock never goes backwards
    assert _run_workload_stop_step(spec, chunks, stops, steps,
                                   wheel_levels=1) == reference
    assert _run_workload_stop_step(spec, chunks, stops, steps) == reference
    assert _run_workload_stop_step(
        spec, chunks, stops, steps,
        wheel_width=0.01, wheel_slots=16,
        wheel_levels=3, wheel_upper_slots=8,
    ) == reference
