"""Test package."""
