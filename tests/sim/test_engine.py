"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.at(2.0, order.append, "late")
    sim.at(1.0, order.append, "early")
    sim.at(1.5, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_ties_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for name in "abc":
        sim.at(1.0, order.append, name)
    sim.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(3.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.25]
    assert sim.now == 3.25


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_nested_scheduling_from_event():
    sim = Simulator()
    hits = []

    def outer():
        hits.append(("outer", sim.now))
        sim.at(1.0, inner)

    def inner():
        hits.append(("inner", sim.now))

    sim.at(1.0, outer)
    sim.run()
    assert hits == [("outer", 1.0), ("inner", 2.0)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.at(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.active


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.at(-0.1, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.at(1.0, lambda: (fired.append(1), sim.stop()))
    sim.at(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    # Remaining events still pending.
    assert sim.pending == 1


def test_stop_during_run_until_preserves_order():
    # Regression: run(until) used to fast-forward now to `until` even
    # after stop(), stranding live level-0 events behind the wheel
    # scan-start clamp — a later run() then fired t=12 before t=5 and
    # sent the clock backwards.
    sim = Simulator(wheel_slots=8, wheel_width=1.0)
    fired = []
    sim.at(2.0, sim.stop)
    sim.at(5.0, lambda: fired.append((5.0, sim.now)))
    sim.at(12.0, lambda: fired.append((12.0, sim.now)))
    sim.run(until=20.0)
    # Stopped before draining: the clock must not pass pending events.
    assert sim.now == 2.0
    # Resume with an interleaved step() then drain; order and clock
    # monotonicity must hold.
    assert sim.step()
    sim.run()
    assert fired == [(5.0, 5.0), (12.0, 12.0)]
    # Fast-forward still applies when the queue genuinely drains.
    sim2 = Simulator(wheel_slots=8, wheel_width=1.0)
    sim2.at(1.0, lambda: None)
    assert sim2.run(until=30.0) == 30.0


def test_corpse_only_upper_level_falls_back_to_heap():
    # The boundary scan purges cancelled events from upper-level
    # buckets; if that empties every level while level 0 is empty too,
    # the drain loop must fall back to the heap path cleanly.
    sim = Simulator(wheel_width=0.01, wheel_slots=16,
                    wheel_levels=3, wheel_upper_slots=8)
    fired = []
    parked = sim.at(5.0, fired.append, "upper")  # parks in an upper level
    sim.at(10_000.0, fired.append, "heap")  # overflow heap
    parked.cancel()
    sim.run()
    assert fired == ["heap"]


def test_ring_aliased_upper_bucket_does_not_gate_later_events():
    # Two upper-level events a full ring apart share a masked bucket;
    # the earlier one must not drag the later one's window forward,
    # and events between them must fire in between.
    sim = Simulator(wheel_width=0.01, wheel_slots=16,
                    wheel_levels=2, wheel_upper_slots=8)
    log = []
    sim.at(0.2, log.append, 0.2)
    sim.at(0.2 + 0.01 * 16 * 8, log.append, "aliased")
    sim.at(0.5, log.append, 0.5)
    sim.run()
    assert log == [0.2, 0.5, "aliased"]


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.at(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except RuntimeError as exc:
            errors.append(exc)

    sim.at(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_deterministic_rng_streams():
    sim_a = Simulator(seed=42)
    sim_b = Simulator(seed=42)
    draws_a = [sim_a.rng("ospf").random() for _ in range(5)]
    draws_b = [sim_b.rng("ospf").random() for _ in range(5)]
    assert draws_a == draws_b
    # Distinct streams are decorrelated.
    assert draws_a != [sim_a.rng("tcp").random() for _ in range(5)]


def test_different_seeds_differ():
    assert (
        Simulator(seed=1).rng("x").random()
        != Simulator(seed=2).rng("x").random()
    )


# ----------------------------------------------------------------------
# Hot-path machinery: O(1) pending, heap compaction, timer wheel,
# in-place rescheduling, native periodic events.
# ----------------------------------------------------------------------
def test_pending_counter_is_live():
    sim = Simulator()
    events = [sim.at(1.0 + i, lambda: None) for i in range(10)]
    assert sim.pending == 10
    events[3].cancel()
    events[7].cancel()
    assert sim.pending == 8
    events[3].cancel()  # idempotent: no double decrement
    assert sim.pending == 8
    sim.run()
    assert sim.pending == 0


def test_pending_counts_wheel_and_heap_events():
    sim = Simulator()
    sim.at(0.001, lambda: None)  # wheel
    sim.at(500.0, lambda: None)  # far past the horizon: overflow heap
    assert sim.pending == 2
    sim.run(until=1.0)
    assert sim.pending == 1


def test_cancelled_heap_entries_are_compacted():
    sim = Simulator(wheel=False)
    events = [sim.at(10.0 + i * 0.01, lambda: None) for i in range(1000)]
    assert len(sim._heap) == 1000
    for event in events[:900]:
        event.cancel()
    # Compaction kicked in well before 900 corpses accumulated.
    assert len(sim._heap) < 500
    assert sim.pending == 100


def test_compaction_disabled_keeps_corpses():
    sim = Simulator(wheel=False, compact_threshold=None)
    events = [sim.at(10.0 + i * 0.01, lambda: None) for i in range(1000)]
    for event in events[:900]:
        event.cancel()
    assert len(sim._heap) == 1000
    assert sim.pending == 100


def test_events_beyond_wheel_horizon_fire_in_order():
    sim = Simulator(wheel_width=0.01, wheel_slots=16)  # horizon: 0.16s
    order = []
    sim.at(5.0, order.append, "far")
    sim.at(0.05, order.append, "near")
    sim.at(1.0, order.append, "mid")
    sim.run()
    assert order == ["near", "mid", "far"]
    assert sim.now == 5.0


def test_schedule_from_callback_into_current_drain():
    # An event scheduled *behind the cursor's slot* mid-drain still
    # fires in correct order.
    sim = Simulator(wheel_width=0.01, wheel_slots=16)
    order = []

    def first():
        order.append(("first", sim.now))
        sim.at(0.0001, lambda: order.append(("wedge", sim.now)))

    sim.at(0.005, first)
    sim.at(0.0052, lambda: order.append(("second", sim.now)))
    sim.run()
    assert [name for name, _ in order] == ["first", "wedge", "second"]


def test_reschedule_reuses_event_object():
    sim = Simulator()
    fired = []
    event = sim.at(1.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1.0]
    again = sim.reschedule(event, 2.0)
    assert again is event
    sim.run()
    assert fired == [1.0, 2.0]


def test_reschedule_rejects_queued_or_cancelled_events():
    sim = Simulator()
    queued = sim.at(1.0, lambda: None)
    with pytest.raises(RuntimeError):
        sim.reschedule(queued, 2.0)
    queued.cancel()
    with pytest.raises(RuntimeError):
        sim.reschedule(queued, 2.0)


def test_schedule_periodic_fires_and_cancels():
    sim = Simulator()
    times = []
    event = sim.schedule_periodic(0.5, lambda: times.append(sim.now))
    sim.run(until=2.2)
    assert times == [0.5, 1.0, 1.5, 2.0]
    event.cancel()
    sim.run(until=5.0)
    assert times == [0.5, 1.0, 1.5, 2.0]
    with pytest.raises(ValueError):
        sim.schedule_periodic(0.0, lambda: None)


def test_stop_mid_slot_preserves_remaining_events():
    sim = Simulator()
    fired = []
    # Two events in the same wheel slot; the first stops the run.
    sim.at(0.0041, lambda: (fired.append("a"), sim.stop()))
    sim.at(0.0042, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    assert sim.pending == 1
    sim.run()
    assert fired == ["a", "b"]


def test_cancel_event_parked_in_upper_wheel_level():
    # Level-0 horizon is 0.16s; 5.0s parks in an upper level.
    sim = Simulator(wheel_width=0.01, wheel_slots=16)
    fired = []
    far = sim.at(5.0, fired.append, "far")
    sim.at(6.0, fired.append, "after")
    assert sim._upper_count >= 1
    far.cancel()
    assert sim.pending == 1
    sim.run()
    assert fired == ["after"]
    assert not far.active


def test_reschedule_rejects_event_parked_in_upper_level():
    sim = Simulator(wheel_width=0.01, wheel_slots=16)
    parked = sim.at(5.0, lambda: None)
    assert sim._upper_count >= 1
    with pytest.raises(RuntimeError):
        sim.reschedule(parked, 10.0)
    parked.cancel()
    sim.run()


def test_cancel_event_staged_in_drain_batch():
    # Both events land in the same level-0 slot; the first cancels the
    # second after the batch has already been pre-sorted and staged.
    sim = Simulator()
    fired = []
    hit = []

    def first():
        hit.append(sim.now)
        victim.cancel()

    sim.at(0.0041, first)
    victim = sim.at(0.0042, fired.append, "victim")
    sim.at(0.0043, fired.append, "survivor")
    sim.run()
    assert hit == [0.0041]
    assert fired == ["survivor"]
    assert sim.pending == 0


def test_merged_heap_event_cancels_staged_wheel_event():
    # A heap event merged into a wheel batch cancels the very wheel
    # event the merge loop was interleaving against. The drain must
    # not advance the clock to the corpse's time (the heap reference
    # ends at the cancel time) nor double-drop the live counter.
    for levels in (0, 1, 2, 3):
        sim = Simulator(wheel_levels=levels)
        fired = []
        timer = sim.schedule_periodic(1.0, lambda: fired.append(sim.now))
        # 20.5 bins past the 2048 x 10 ms level-0 horizon, so with no
        # upper levels it lands in the overflow heap and fires via the
        # batch merge path while the 21.0 occurrence is staged.
        sim.at(20.5, timer.cancel)
        sim.run()
        assert fired[-1] == 20.0, levels
        assert sim.now == 20.5, levels
        assert sim.pending == 0, levels

    ref = Simulator(wheel=False)
    fired = []
    timer = ref.schedule_periodic(1.0, lambda: fired.append(ref.now))
    ref.at(20.5, timer.cancel)
    ref.run()
    assert ref.now == 20.5 and ref.pending == 0


def test_cancel_call_soon_event_before_it_fires():
    sim = Simulator()
    fired = []

    def outer():
        event = sim.call_soon(fired.append, "soon")
        event.cancel()
        sim.call_soon(fired.append, "kept")

    sim.at(1.0, outer)
    sim.run()
    assert fired == ["kept"]
    assert sim.pending == 0


def test_upper_level_events_cascade_and_fire_in_order():
    # Tiny geometry: 16 level-0 slots, 8-slot upper levels, so these
    # deadlines span level 1, level 2, and the overflow heap, with
    # ring-mask collisions in every level.
    sim = Simulator(
        wheel_width=0.01, wheel_slots=16,
        wheel_levels=3, wheel_upper_slots=8,
    )
    times = [4.17, 0.05, 1.03, 26.0, 0.9, 11.5, 1.02, 260.0, 0.05]
    order = []
    for t in times:
        sim.at(t, order.append, t)
    sim.run()
    assert order == sorted(times)
    assert sim._cascades > 0


def test_dispatch_stats_count_batches_and_cascades():
    sim = Simulator()
    for i in range(10):
        sim.at(0.0041 + i * 1e-5, lambda: None)  # one level-0 slot
    sim.at(500.0, lambda: None)  # parks in an upper level
    sim.run()
    stats = sim.dispatch_stats
    assert stats["batches"] >= 1
    assert stats["batch_events"] >= 10
    assert stats["batch_max"] >= 10
    assert stats["cascades"] >= 1
    assert stats["batch_mean"] > 0.0
    # Heap-only engines have no batch machinery: stats stay zero.
    plain = Simulator(wheel=False)
    plain.at(1.0, lambda: None)
    plain.run()
    assert plain.dispatch_stats["batches"] == 0


def test_step_and_peek_merge_wheel_and_heap():
    sim = Simulator(wheel_width=0.01, wheel_slots=16)
    order = []
    sim.at(500.0, order.append, "heap")
    sim.at(0.01, order.append, "wheel")
    assert sim.peek() == 0.01
    assert sim.step()
    assert order == ["wheel"]
    assert sim.peek() == 500.0
    assert sim.step()
    assert not sim.step()
    assert order == ["wheel", "heap"]
