"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.at(2.0, order.append, "late")
    sim.at(1.0, order.append, "early")
    sim.at(1.5, order.append, "middle")
    sim.run()
    assert order == ["early", "middle", "late"]


def test_ties_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for name in "abc":
        sim.at(1.0, order.append, name)
    sim.run()
    assert order == ["a", "b", "c"]


def test_clock_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.at(3.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.25]
    assert sim.now == 3.25


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(5.0, fired.append, 5)
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_nested_scheduling_from_event():
    sim = Simulator()
    hits = []

    def outer():
        hits.append(("outer", sim.now))
        sim.at(1.0, inner)

    def inner():
        hits.append(("inner", sim.now))

    sim.at(1.0, outer)
    sim.run()
    assert hits == [("outer", 1.0), ("inner", 2.0)]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.at(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []
    assert not event.active


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.at(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_scheduling_in_past_raises():
    sim = Simulator()
    sim.at(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule(0.5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.at(-0.1, lambda: None)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.at(1.0, lambda: (fired.append(1), sim.stop()))
    sim.at(2.0, fired.append, 2)
    sim.run()
    assert fired == [1]
    # Remaining events still pending.
    assert sim.pending == 1


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, 1)
    sim.at(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert fired == [1, 2]
    assert not sim.step()


def test_peek_skips_cancelled():
    sim = Simulator()
    event = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    event.cancel()
    assert sim.peek() == 2.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.at(1.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [1.0]


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except RuntimeError as exc:
            errors.append(exc)

    sim.at(1.0, reenter)
    sim.run()
    assert len(errors) == 1


def test_deterministic_rng_streams():
    sim_a = Simulator(seed=42)
    sim_b = Simulator(seed=42)
    draws_a = [sim_a.rng("ospf").random() for _ in range(5)]
    draws_b = [sim_b.rng("ospf").random() for _ in range(5)]
    assert draws_a == draws_b
    # Distinct streams are decorrelated.
    assert draws_a != [sim_a.rng("tcp").random() for _ in range(5)]


def test_different_seeds_differ():
    assert (
        Simulator(seed=1).rng("x").random()
        != Simulator(seed=2).rng("x").random()
    )
