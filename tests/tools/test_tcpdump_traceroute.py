"""Tests for tcpdump and traceroute."""

import pytest

from repro.core import VINI, Experiment
from repro.phys.node import PhysicalNode, connect
from repro.sim import Simulator
from repro.tools import IperfTCPClient, IperfTCPServer, Tcpdump, Traceroute
from repro.tools.tcpdump import tcp_filter


class TestTcpdump:
    def test_captures_tcp_arrivals_in_order(self):
        sim = Simulator(seed=21)
        a = PhysicalNode(sim, "a")
        b = PhysicalNode(sim, "b")
        connect(sim, a, b, bandwidth=100e6, delay=0.005, subnet="192.0.2.0/30")
        dump = Tcpdump(b, filter=tcp_filter(5001), direction="in").start()
        server = IperfTCPServer(b, window=16 * 1024)
        IperfTCPClient(a, "192.0.2.2", streams=1, duration=2.0, server=server).start()
        sim.run(until=3.0)
        arrivals = dump.tcp_arrivals()
        assert len(arrivals) > 50
        times = [t for t, _seq, _l in arrivals]
        assert times == sorted(times)
        seqs = [s for _t, s, _l in arrivals]
        assert seqs == sorted(seqs)  # no loss: monotone byte positions

    def test_stop_detaches(self):
        sim = Simulator(seed=22)
        a = PhysicalNode(sim, "a")
        b = PhysicalNode(sim, "b")
        connect(sim, a, b, bandwidth=100e6, delay=0.001, subnet="192.0.2.0/30")
        dump = Tcpdump(b).start()
        dump.stop()
        server = IperfTCPServer(b)
        IperfTCPClient(a, "192.0.2.2", streams=1, duration=1.0, server=server).start()
        sim.run(until=2.0)
        assert len(dump) == 0


class TestTraceroute:
    def build_overlay(self, n=4):
        vini = VINI(seed=23)
        for i in range(n):
            vini.add_node(f"p{i}")
        for i in range(n - 1):
            vini.connect(f"p{i}", f"p{i + 1}", delay=0.003)
        vini.install_underlay_routes()
        exp = Experiment(vini, "iias", realtime=True)
        for i in range(n):
            exp.add_node(f"v{i}", f"p{i}")
        for i in range(n - 1):
            exp.connect(f"v{i}", f"v{i + 1}")
        exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
        exp.run(until=20.0)
        return vini, exp

    def test_traceroute_walks_virtual_hops(self):
        vini, exp = self.build_overlay(4)
        v0 = exp.network.nodes["v0"]
        v3 = exp.network.nodes["v3"]
        trace = Traceroute(v0.phys_node, v3.tap_addr, sliver=v0.sliver).start()
        vini.run(until=40.0)
        assert trace.done
        # Hops: local click (v0), v1, v2, then the destination answers.
        expected = [
            str(exp.network.nodes["v0"].tap_addr),
            str(exp.network.nodes["v1"].tap_addr),
            str(exp.network.nodes["v2"].tap_addr),
            str(v3.tap_addr),
        ]
        assert trace.path() == expected
        assert all(rtt is not None and rtt >= 0 for rtt in trace.rtts)

    def test_traceroute_timeout_on_blackhole(self):
        vini, exp = self.build_overlay(3)
        exp.network.fail_link("v1", "v2")
        v0 = exp.network.nodes["v0"]
        v2 = exp.network.nodes["v2"]
        trace = Traceroute(
            v0.phys_node, v2.tap_addr, sliver=v0.sliver,
            max_hops=4, probe_timeout=1.0,
        ).start()
        vini.run(until=60.0)
        assert trace.done
        assert None in trace.path()
