"""Tests for the ping tool on physical and overlay paths."""

import pytest

from repro.core import VINI, Experiment
from repro.phys.node import PhysicalNode, connect
from repro.sim import Simulator
from repro.tools import Ping


def test_ping_physical_rtt_matches_path_delay():
    sim = Simulator(seed=1)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=1e9, delay=0.012, subnet="192.0.2.0/30")
    ping = Ping(a, "192.0.2.2", interval=0.5, count=10).start()
    sim.run(until=10.0)
    stats = ping.stats()
    assert stats.transmitted == 10
    assert stats.received == 10
    assert stats.loss_pct == 0.0
    assert stats.avg_rtt == pytest.approx(0.024, rel=0.1)
    assert stats.mdev < 0.001


def test_ping_flood_mode():
    sim = Simulator(seed=2)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=1e9, delay=0.0002, subnet="192.0.2.0/30")
    ping = Ping(a, "192.0.2.2", interval=0.001, count=1000, payload=56).start()
    sim.run(until=3.0)
    stats = ping.stats()
    assert stats.transmitted == 1000
    assert stats.received == 1000


def test_ping_counts_losses_on_dead_link():
    sim = Simulator(seed=3)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    link = connect(sim, a, b, bandwidth=1e9, delay=0.001, subnet="192.0.2.0/30")
    ping = Ping(a, "192.0.2.2", interval=0.5, count=10).start()
    sim.at(2.2, link.fail)
    sim.run(until=10.0)
    stats = ping.stats()
    assert stats.transmitted == 10
    assert 0 < stats.received < 10
    assert stats.loss_pct > 0


def test_ping_over_overlay():
    vini = VINI(seed=4)
    for name in ("p0", "p1", "p2"):
        vini.add_node(name)
    vini.connect("p0", "p1", delay=0.005)
    vini.connect("p1", "p2", delay=0.005)
    vini.install_underlay_routes()
    exp = Experiment(vini, "iias", realtime=True)
    for i in range(3):
        exp.add_node(f"v{i}", f"p{i}")
    exp.connect("v0", "v1")
    exp.connect("v1", "v2")
    exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
    exp.run(until=20.0)
    v0 = exp.network.nodes["v0"]
    v2 = exp.network.nodes["v2"]
    ping = Ping(
        v0.phys_node, v2.tap_addr, sliver=v0.sliver, interval=1.0, count=5
    ).start()
    vini.run(until=30.0)
    stats = ping.stats()
    assert stats.received == 5
    # Two physical hops each way plus Click processing.
    assert stats.avg_rtt > 0.020
    assert stats.avg_rtt < 0.030


def test_ping_trace_records():
    sim = Simulator(seed=5)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=1e9, delay=0.001, subnet="192.0.2.0/30")
    Ping(a, "192.0.2.2", interval=0.5, count=3).start()
    sim.run(until=5.0)
    assert sim.trace.count("ping") == 3


def test_ping_stop():
    sim = Simulator(seed=6)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=1e9, delay=0.001, subnet="192.0.2.0/30")
    ping = Ping(a, "192.0.2.2", interval=0.5).start()
    sim.at(2.2, ping.stop)
    sim.run(until=10.0)
    assert ping.transmitted == 5
