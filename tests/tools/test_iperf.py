"""Tests for the iperf tool (TCP and UDP modes)."""

import pytest

from repro.phys.node import PhysicalNode, connect
from repro.sim import Simulator
from repro.tools import IperfTCPClient, IperfTCPServer, IperfUDPClient, IperfUDPServer


def make_pair(bandwidth=100e6, delay=0.005):
    sim = Simulator(seed=11)
    a = PhysicalNode(sim, "client")
    b = PhysicalNode(sim, "server")
    connect(sim, a, b, bandwidth=bandwidth, delay=delay, subnet="192.0.2.0/30",
            queue_bytes=256 * 1024)
    return sim, a, b


class TestTCP:
    def test_single_stream_throughput_window_limited(self):
        sim, a, b = make_pair(bandwidth=1e9, delay=0.010)  # RTT 20 ms
        server = IperfTCPServer(b, window=16 * 1024)
        client = IperfTCPClient(
            a, "192.0.2.2", streams=1, duration=5.0, server=server
        ).start()
        sim.run(until=6.0)
        result = client.result()
        # 16 KB / 20 ms = 6.5 Mb/s ceiling.
        assert result.throughput_mbps < 7.5
        assert result.throughput_mbps > 3.0

    def test_twenty_streams_fill_fast_link(self):
        sim, a, b = make_pair(bandwidth=100e6, delay=0.005)
        server = IperfTCPServer(b, window=16 * 1024)
        client = IperfTCPClient(
            a, "192.0.2.2", streams=20, duration=5.0, server=server
        ).start()
        sim.run(until=6.0)
        result = client.result()
        assert result.streams == 20
        # 20 windows in flight saturate most of the 100 Mb/s link.
        assert result.throughput_mbps > 60.0
        assert result.throughput_mbps < 100.0

    def test_result_requires_server(self):
        sim, a, b = make_pair()
        client = IperfTCPClient(a, "192.0.2.2", streams=1, duration=1.0)
        with pytest.raises(RuntimeError):
            client.result()


class TestUDP:
    def test_cbr_no_loss_on_fast_link(self):
        sim, a, b = make_pair(bandwidth=100e6)
        server = IperfUDPServer(b)
        client = IperfUDPClient(
            a, "192.0.2.2", rate_bps=10e6, duration=3.0, server=server
        ).start()
        sim.run(until=5.0)
        result = client.result()
        assert result.sent == pytest.approx(10e6 * 3.0 / (1430 * 8), rel=0.02)
        assert result.loss_pct == 0.0
        assert result.jitter < 0.0005

    def test_overload_drops_at_link_queue(self):
        sim, a, b = make_pair(bandwidth=5e6)  # offered 10M > 5M link
        server = IperfUDPServer(b)
        client = IperfUDPClient(
            a, "192.0.2.2", rate_bps=10e6, duration=3.0, server=server
        ).start()
        sim.run(until=6.0)
        result = client.result()
        assert result.loss_pct > 30.0

    def test_jitter_reflects_queueing(self):
        sim, a, b = make_pair(bandwidth=12e6)
        server = IperfUDPServer(b)
        client = IperfUDPClient(
            a, "192.0.2.2", rate_bps=11.5e6, duration=3.0, server=server
        ).start()
        sim.run(until=6.0)
        result = client.result()
        # Near saturation the queue breathes: jitter is visible but finite.
        assert result.jitter >= 0.0

    def test_rate_validation(self):
        sim, a, b = make_pair()
        with pytest.raises(ValueError):
            IperfUDPClient(a, "192.0.2.2", rate_bps=0)
