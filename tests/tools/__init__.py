"""Test package."""
