"""Tests for the traffic generators and flash crowds."""

import pytest

from repro.phys.node import PhysicalNode, connect
from repro.phys.process import Process
from repro.sim import Simulator
from repro.tools.traffic import CBRSource, FlashCrowd, OnOffSource, PoissonSource


def make_world(n_sources=1):
    sim = Simulator(seed=81)
    server = PhysicalNode(sim, "server")
    sources = []
    for i in range(n_sources):
        node = PhysicalNode(sim, f"s{i}")
        connect(sim, node, server, bandwidth=1e9, delay=0.001,
                subnet=f"10.{i}.0.0/30")
        # Every source can reach the server's primary address.
        node.add_route("10.0.0.0/30", interface="eth0")
        sources.append(node)
    proc = Process(server, "sink")
    sock = server.udp_socket(proc, port=7000, rcvbuf=10**7,
                             local_addr=server.interfaces["eth0"].address)
    received = []
    sock.on_receive = lambda pkt, src, sport: received.append(sim.now)
    return sim, server, sources, received


def server_addr(server):
    return server.interfaces["eth0"].address


def test_cbr_rate_accuracy():
    sim, server, (src,), received = make_world()
    CBRSource(src, server_addr(server), 7000, rate_bps=1e6, payload=1000).start()
    sim.run(until=4.0)
    expected = 1e6 * 4.0 / (1000 * 8)
    assert len(received) == pytest.approx(expected, rel=0.05)


def test_cbr_stop():
    sim, server, (src,), received = make_world()
    source = CBRSource(src, server_addr(server), 7000, rate_bps=1e6).start()
    sim.at(1.0, source.stop)
    sim.run(until=5.0)
    count_at_stop = len(received)
    assert count_at_stop < 120
    assert source.sent == count_at_stop


def test_poisson_mean_rate():
    sim, server, (src,), received = make_world()
    PoissonSource(src, server_addr(server), 7000, rate_pps=500).start()
    sim.run(until=4.0)
    assert len(received) == pytest.approx(2000, rel=0.15)


def test_poisson_interarrivals_vary():
    sim, server, (src,), received = make_world()
    PoissonSource(src, server_addr(server), 7000, rate_pps=200).start()
    sim.run(until=3.0)
    gaps = {round(b - a, 7) for a, b in zip(received, received[1:])}
    assert len(gaps) > len(received) // 2  # genuinely random spacing


def test_onoff_produces_bursts_and_gaps():
    sim, server, (src,), received = make_world()
    OnOffSource(src, server_addr(server), 7000, rate_bps=8e6,
                mean_on=0.2, mean_off=0.5, payload=1000).start()
    sim.run(until=20.0)
    assert received
    gaps = [b - a for a, b in zip(received, received[1:])]
    burst_gap = 1000 * 8 / 8e6
    assert any(abs(g - burst_gap) < burst_gap * 0.1 for g in gaps)  # in-burst
    assert any(g > 0.2 for g in gaps)  # off periods


def test_flash_crowd_window():
    sim, server, sources, received = make_world(n_sources=3)
    crowd = FlashCrowd(sources, server_addr(server), 7000,
                       n_sources=6, rate_bps=2e6, payload=1000)
    crowd.schedule(start=5.0, duration=2.0)
    sim.run(until=10.0)
    assert all(5.0 <= t <= 7.2 for t in received)
    # 6 senders x 2 Mb/s x 2 s / 8000 bits = ~3000 datagrams.
    assert crowd.sent == pytest.approx(3000, rel=0.1)
    assert len(received) > 2000  # most arrive (1 Gb/s links)


def test_validation():
    sim, server, (src,), _ = make_world()
    with pytest.raises(ValueError):
        CBRSource(src, server_addr(server), 7000, rate_bps=0)
    with pytest.raises(ValueError):
        PoissonSource(src, server_addr(server), 7000, rate_pps=0)
    with pytest.raises(ValueError):
        FlashCrowd([], server_addr(server), 7000)
