"""Test package."""
