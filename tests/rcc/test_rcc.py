"""Tests for the rcc pipeline: parse, check, generate."""

import pytest

from repro.net.addr import ip, prefix
from repro.rcc import (
    abilene_router_configs,
    check_model,
    experiment_from_model,
    parse_config,
    parse_configs,
)
from repro.rcc.parser import ConfigSyntaxError
from repro.topologies.abilene import ABILENE_LINKS, ABILENE_POPS, build_abilene, ospf_weight

SIMPLE = """\
hostname r1
!
interface ge-0/0/0
 description to r2
 ip address 192.0.2.1 255.255.255.252
 ip ospf cost 7
 ip ospf hello-interval 5
 ip ospf dead-interval 10
!
router ospf 1
 router-id 10.255.0.1
 network 192.0.2.0 0.0.0.255 area 0
!
"""


class TestParser:
    def test_parse_single_router(self):
        router = parse_config(SIMPLE)
        assert router.hostname == "r1"
        iface = router.interfaces["ge-0/0/0"]
        assert str(iface.address) == "192.0.2.1"
        assert iface.prefix == prefix("192.0.2.0/30")
        assert iface.ospf_cost == 7
        assert iface.hello_interval == 5.0
        assert router.ospf.router_id == ip("10.255.0.1")
        assert router.ospf.networks[0][0] == prefix("192.0.2.0/24")

    def test_ospf_covers(self):
        router = parse_config(SIMPLE)
        assert router.ospf.covers(ip("192.0.2.1"))
        assert not router.ospf.covers(ip("203.0.113.1"))
        assert router.ospf_interfaces()

    def test_shutdown_interface_ignored_in_links(self):
        text = SIMPLE.replace(" ip ospf cost 7", " shutdown\n ip ospf cost 7")
        router = parse_config(text)
        assert router.interfaces["ge-0/0/0"].shutdown

    def test_syntax_error_reported_with_line(self):
        with pytest.raises(ConfigSyntaxError) as err:
            parse_config("hostname x\ninterface e0\n frobnicate\n")
        assert "line 3" in str(err.value)

    def test_unknown_toplevel_rejected(self):
        with pytest.raises(ConfigSyntaxError):
            parse_config("banner motd hello\n")

    def test_duplicate_hostname_rejected(self):
        with pytest.raises(ValueError):
            parse_configs([SIMPLE, SIMPLE])

    def test_link_inference(self):
        peer = SIMPLE.replace("r1", "r2").replace("192.0.2.1", "192.0.2.2").replace(
            "10.255.0.1", "10.255.0.2"
        )
        model = parse_configs([SIMPLE, peer])
        assert len(model.links) == 1
        link = model.links[0]
        assert {link.router_a, link.router_b} == {"r1", "r2"}
        assert link.cost == 7


class TestChecks:
    def test_clean_config_has_no_errors(self):
        peer = SIMPLE.replace("r1", "r2").replace("192.0.2.1", "192.0.2.2").replace(
            "10.255.0.1", "10.255.0.2"
        )
        model = parse_configs([SIMPLE, peer])
        errors = [f for f in check_model(model) if f.severity == "error"]
        assert errors == []

    def test_dangling_subnet_warned(self):
        model = parse_configs([SIMPLE])
        faults = check_model(model)
        assert any("no neighbor" in f.message for f in faults)

    def test_duplicate_address_detected(self):
        peer = SIMPLE.replace("r1", "r2").replace("10.255.0.1", "10.255.0.2")
        model = parse_configs([SIMPLE, peer])
        faults = check_model(model)
        assert any("also configured" in f.message for f in faults)

    def test_duplicate_router_id_detected(self):
        peer = SIMPLE.replace("r1", "r2").replace("192.0.2.1", "192.0.2.2")
        model = parse_configs([SIMPLE, peer])
        faults = check_model(model)
        assert any("router-id" in f.message for f in faults)

    def test_timer_mismatch_is_error(self):
        peer = (
            SIMPLE.replace("r1", "r2")
            .replace("192.0.2.1", "192.0.2.2")
            .replace("10.255.0.1", "10.255.0.2")
            .replace("hello-interval 5", "hello-interval 10")
        )
        model = parse_configs([SIMPLE, peer])
        faults = check_model(model)
        assert any(
            f.severity == "error" and "hello-interval" in f.message for f in faults
        )

    def test_cost_mismatch_is_warning(self):
        peer = (
            SIMPLE.replace("r1", "r2")
            .replace("192.0.2.1", "192.0.2.2")
            .replace("10.255.0.1", "10.255.0.2")
            .replace("cost 7", "cost 9")
        )
        model = parse_configs([SIMPLE, peer])
        faults = check_model(model)
        assert any("cost mismatch" in f.message for f in faults)


class TestAbileneRoundTrip:
    def test_sample_configs_parse_clean(self):
        model = parse_configs(abilene_router_configs())
        assert len(model.routers) == 11
        assert len(model.links) == len(ABILENE_LINKS)
        errors = [f for f in check_model(model) if f.severity == "error"]
        assert errors == []

    def test_costs_roundtrip(self):
        model = parse_configs(abilene_router_configs())
        for (a, b), delay in ABILENE_LINKS.items():
            link = model.link_between(a, b)
            assert link is not None
            assert link.cost == ospf_weight(delay)

    def test_generate_experiment_mirrors_abilene(self):
        vini = build_abilene(seed=3)
        model = parse_configs(abilene_router_configs())
        exp = experiment_from_model(model, vini, name="mirror")
        assert set(exp.network.nodes) == set(ABILENE_POPS)
        assert len(exp.network.links) == len(ABILENE_LINKS)
        # Timers extracted from the configuration, not defaults.
        ospf = exp.network.nodes["denver"].xorp.ospf
        assert ospf.hello_interval == 5.0
        assert ospf.dead_interval == 10.0
        # Costs carried through to the virtual interfaces.
        vlink = exp.network.link_between("denver", "kansascity")
        assert vlink.cost == ospf_weight(ABILENE_LINKS[("denver", "kansascity")])

    def test_strict_mode_rejects_faulty_configs(self):
        vini = build_abilene(seed=4)
        configs = abilene_router_configs()
        broken = [c.replace("hello-interval 5", "hello-interval 30", 1) for c in configs[:1]] + configs[1:]
        model = parse_configs(broken)
        with pytest.raises(ValueError):
            experiment_from_model(model, vini)
