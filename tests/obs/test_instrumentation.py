"""The instrumented hot paths publish registry values that equal the
legacy object-attribute readouts — the contract the rewritten benches
lean on."""

from repro.obs import MetricsRegistry
from repro.tools import IperfTCPClient, IperfTCPServer, Ping
from repro.topologies import build_abilene_iias, build_deter


def test_deter_world_metrics_match_legacy_attributes():
    vini = build_deter(seed=4)
    metrics = vini.sim.metrics
    server = IperfTCPServer(vini.nodes["sink"])
    IperfTCPClient(
        vini.nodes["src"], vini.nodes["sink"].address,
        streams=2, duration=0.3, server=server,
    ).start()
    ping = Ping(
        vini.nodes["src"], vini.nodes["sink"].address,
        interval=0.05, count=5,
    ).start()
    vini.run(until=1.0)

    # Engine gauges read the live scheduler state.
    assert metrics.value("sim.now") == vini.sim.now
    assert metrics.value("sim.pending") == vini.sim.pending
    assert metrics.value("sim.events_scheduled") > 0

    # CPU accounting: the pull counter IS the scheduler's busy_time.
    for name, node in vini.nodes.items():
        assert metrics.value("cpu.busy_seconds", cpu=f"{name}.cpu") == node.cpu.busy_time
    latencies = list(metrics.find("cpu.sched_latency"))
    assert latencies and any(h.count > 0 for h in latencies)

    # Links: per-direction counters conserve packets.
    offered = metrics.sum_values("link.offered_pkts")
    delivered = metrics.sum_values("link.delivered_pkts")
    dropped = metrics.sum_values("link.dropped_pkts")
    assert offered > 0
    assert delivered + dropped <= offered  # <= : packets may be in flight
    assert metrics.sum_values("link.delivered_bytes") > 0

    # Transport + tools equal their legacy readouts.
    from repro.net.tcp import TCPStack

    sink_stack = TCPStack.of(vini.nodes["sink"])
    assert (
        metrics.value("tcp.bytes_received", node="sink")
        == sink_stack.total_bytes_received
    )
    assert (
        metrics.value("iperf.tcp.bytes_received", node="sink", port=5001)
        == server.bytes_received
    )
    labels = dict(src="src", dst=str(ping.dst), ident=ping.ident)
    assert metrics.value("ping.transmitted", **labels) == ping.transmitted
    assert metrics.value("ping.received", **labels) == ping.received
    hist = metrics.get("ping.rtt", **labels)
    assert hist.count == len(ping.samples)
    assert hist.sum == sum(rtt for _t, _s, rtt in ping.samples)


def test_abilene_overlay_publishes_click_and_ospf_metrics():
    vini, exp = build_abilene_iias(seed=6)
    exp.run(until=35.0)
    metrics = vini.sim.metrics

    # Every virtual link end's Click loss element registered pull counters.
    loss_series = list(metrics.find("click.loss.delivered_pkts"))
    assert loss_series
    assert all("node" in m.labels and "element" in m.labels for m in loss_series)
    assert metrics.sum_values("click.loss.delivered_pkts") > 0
    # Tunnels carried the overlay's traffic.
    assert metrics.sum_values("click.tunnel.tx_pkts") > 0
    assert metrics.sum_values("click.tunnel.rx_pkts") > 0

    # OSPF converged: hellos flowed, SPF ran, LSDBs filled, adjacencies
    # reached FULL — and the pull values equal the daemon attributes.
    assert metrics.sum_values("ospf.messages_sent", type="hello") > 0
    assert metrics.sum_values("ospf.messages_received", type="hello") > 0
    from repro.routing.ospf import _rid

    for vnode in exp.network.nodes.values():
        daemon = vnode.xorp.ospf
        if daemon is None:
            continue
        rid = _rid(daemon.router_id)
        row = [m for m in metrics.find("ospf.spf_runs", router=rid)]
        assert len(row) == 1 and row[0].value == daemon.spf_runs
        assert metrics.value("ospf.lsdb_size", router=rid) == len(daemon.lsdb)
        assert metrics.value("ospf.neighbors_full", router=rid) >= 1
        assert metrics.value("ospf.last_spf_time", router=rid) > 0


def test_policy_counters_track_import_export_decisions():
    from repro.sim.engine import Simulator
    from repro.topologies.internet import build_policy_graph

    sim = Simulator(seed=2)
    build_policy_graph(sim, 3, [(1, 2), (3, 2)], [])
    sim.run(until=30.0)
    metrics = sim.metrics
    assert metrics.sum_values("policy.imports_accepted") > 0
    assert metrics.sum_values("policy.exports_allowed") > 0
    # as2 must have filtered provider routes from its other provider.
    assert metrics.sum_values("policy.exports_filtered") > 0
    for name in ("policy.imports_accepted", "policy.exports_allowed",
                 "policy.exports_filtered"):
        assert all("daemon" in m.labels for m in metrics.find(name))


def test_disabled_registry_covers_policy_counters():
    from repro.sim.engine import Simulator
    from repro.topologies.internet import build_policy_graph

    old = MetricsRegistry.default_enabled
    MetricsRegistry.default_enabled = False
    try:
        sim = Simulator(seed=2)
        daemons, _policies = build_policy_graph(sim, 3, [(1, 2), (3, 2)], [])
        sim.run(until=30.0)
        assert len(sim.metrics) == 0
        assert sim.metrics.collect() == []
        # Policy still enforced — only the bookkeeping is gone.
        from repro.net.addr import prefix
        assert daemons[1].loc_rib.get(prefix("99.3.0.0/16").key) is None
        assert daemons[1].loc_rib.get(prefix("99.2.0.0/16").key) is not None
    finally:
        MetricsRegistry.default_enabled = old


def test_disabled_world_registers_no_instruments():
    old = MetricsRegistry.default_enabled
    MetricsRegistry.default_enabled = False
    try:
        vini = build_deter(seed=4)
        server = IperfTCPServer(vini.nodes["sink"])
        IperfTCPClient(
            vini.nodes["src"], vini.nodes["sink"].address,
            streams=1, duration=0.2, server=server,
        ).start()
        vini.run(until=0.5)
        assert len(vini.sim.metrics) == 0
        assert vini.sim.metrics.collect() == []
        # The world still worked — only the bookkeeping is gone.
        assert server.bytes_received > 0
    finally:
        MetricsRegistry.default_enabled = old
