"""Unit tests for repro.obs.metrics: instruments and the registry."""

import math

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
    log_buckets,
)


# ----------------------------------------------------------------------
# Buckets
# ----------------------------------------------------------------------
def test_log_buckets_span_and_spacing():
    bounds = log_buckets(1e-3, 1e0, per_decade=2)
    assert bounds[0] == pytest.approx(1e-3)
    assert bounds[-1] == pytest.approx(1.0)
    assert len(bounds) == 7  # 3 decades * 2 + the lower edge
    ratios = [b / a for a, b in zip(bounds, bounds[1:])]
    assert all(r == pytest.approx(10 ** 0.5) for r in ratios)


def test_log_buckets_validation():
    with pytest.raises(ValueError):
        log_buckets(0.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1.0, 1.0)
    with pytest.raises(ValueError):
        log_buckets(1e-3, 1.0, per_decade=0)


def test_default_buckets_cover_durations():
    assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
    assert DEFAULT_BUCKETS[-1] == pytest.approx(1e3)


# ----------------------------------------------------------------------
# Counter / Gauge
# ----------------------------------------------------------------------
def test_push_counter_accumulates():
    reg = MetricsRegistry(enabled=True)
    c = reg.counter("pkts", node="a")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert reg.value("pkts", node="a") == 4


def test_pull_counter_reads_live_and_rejects_inc():
    reg = MetricsRegistry(enabled=True)
    state = {"n": 0}
    c = reg.counter("pkts", fn=lambda: state["n"])
    state["n"] = 7
    assert c.value == 7
    with pytest.raises(RuntimeError):
        c.inc()


def test_gauge_set_inc_dec_and_pull():
    reg = MetricsRegistry(enabled=True)
    g = reg.gauge("depth")
    g.set(5)
    g.inc(2)
    g.dec()
    assert g.value == 6
    level = [0]
    pulled = reg.gauge("level", fn=lambda: level[0])
    level[0] = 9
    assert pulled.value == 9


def test_same_key_returns_same_object():
    reg = MetricsRegistry(enabled=True)
    a = reg.counter("x", node="n1", port=1)
    b = reg.counter("x", port=1, node="n1")  # label order is irrelevant
    c = reg.counter("x", node="n2", port=1)
    assert a is b
    assert a is not c
    assert len(reg) == 2


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_exact_moments_match_sample_list():
    h = Histogram("rtt", {})
    samples = [0.0761, 0.0763, 0.0932, 0.0930, 0.1101]
    for s in samples:
        h.observe(s)
    assert h.count == len(samples)
    assert h.min == min(samples)
    assert h.max == max(samples)
    assert h.mean == pytest.approx(sum(samples) / len(samples), abs=1e-15)
    mean = sum(samples) / len(samples)
    mdev = math.sqrt(sum((s - mean) ** 2 for s in samples) / len(samples))
    assert h.stddev == pytest.approx(mdev, rel=1e-9)


def test_histogram_quantiles_clamped_to_observed_range():
    h = Histogram("lat", {})
    for v in (0.010, 0.011, 0.012, 0.013, 0.200):
        h.observe(v)
    assert h.min <= h.p50 <= h.max
    assert h.min <= h.p95 <= h.max
    assert h.min <= h.p99 <= h.max
    assert h.p50 <= h.p95 <= h.p99
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_empty_readouts():
    h = Histogram("lat", {})
    assert h.mean == 0.0
    assert h.stddev == 0.0
    assert h.quantile(0.5) == 0.0
    snap = h.snapshot()
    assert snap["min"] == 0.0 and snap["max"] == 0.0


def test_histogram_rejects_unsorted_bounds():
    with pytest.raises(ValueError):
        Histogram("bad", {}, bounds=(1.0, 0.5))


def test_histogram_single_value_quantiles_degenerate():
    h = Histogram("one", {})
    h.observe(0.42)
    assert h.p50 == pytest.approx(0.42)
    assert h.p99 == pytest.approx(0.42)


# ----------------------------------------------------------------------
# Disabled registry / null metric
# ----------------------------------------------------------------------
def test_disabled_registry_hands_out_null_and_registers_nothing():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("x")
    g = reg.gauge("y")
    h = reg.histogram("z")
    assert c is NULL_METRIC and g is NULL_METRIC and h is NULL_METRIC
    c.inc()
    g.set(5)
    h.observe(1.0)
    assert c.value == 0.0 and h.count == 0
    assert len(reg) == 0
    assert reg.collect() == []
    assert reg.value("x", default=13.0) == 13.0


def test_default_enabled_class_flag():
    assert MetricsRegistry.default_enabled is True
    try:
        MetricsRegistry.default_enabled = False
        assert MetricsRegistry().enabled is False
        # An explicit argument still wins.
        assert MetricsRegistry(enabled=True).enabled is True
    finally:
        MetricsRegistry.default_enabled = True


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def test_find_and_sum_values():
    reg = MetricsRegistry(enabled=True)
    reg.counter("drops", link="a").inc(2)
    reg.counter("drops", link="b").inc(3)
    reg.counter("other", link="a").inc(100)
    assert reg.sum_values("drops") == 5
    assert reg.sum_values("drops", link="a") == 2
    assert {m.labels["link"] for m in reg.find("drops")} == {"a", "b"}


def test_collect_is_sorted_and_stable():
    reg = MetricsRegistry(enabled=True)
    reg.counter("b_metric", node="z")
    reg.counter("a_metric", node="y")
    reg.counter("a_metric", node="x")
    rows = reg.collect()
    keys = [(r["name"], sorted(r["labels"].items())) for r in rows]
    assert keys == sorted(keys)
    assert rows == reg.collect()


def test_clear_and_iter():
    reg = MetricsRegistry(enabled=True)
    reg.counter("x")
    assert len(list(iter(reg))) == 1
    reg.clear()
    assert len(reg) == 0
