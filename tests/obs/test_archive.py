"""Tests for run archives: manifests, signatures, the writer hooks."""

import hashlib
import json
import os

import pytest

from repro.obs.archive import (
    ARCHIVE_SCHEMA,
    MANIFEST_NAME,
    RunArchive,
    config_signature,
    experiment_signature,
    load_manifest,
    maybe_attach_env_archive,
    note_artifact,
    resolve_artifact,
    sha256_file,
)
from repro.sim import Simulator
from repro.topologies import build_abilene_iias


def test_sha256_file_matches_hashlib(tmp_path):
    path = tmp_path / "blob.bin"
    path.write_bytes(b"x" * 3000)
    assert sha256_file(str(path)) == hashlib.sha256(b"x" * 3000).hexdigest()


def test_config_signature_is_stable_and_order_insensitive():
    a = config_signature({"seed": 8, "name": "fig8"})
    b = config_signature({"name": "fig8", "seed": 8})
    assert a == b and len(a) == 16
    assert config_signature({"seed": 9, "name": "fig8"}) != a
    # Non-JSON leaves sign through repr instead of raising.
    assert config_signature({"obj": (1, 2)}) == config_signature({"obj": (1, 2)})


def test_manifest_records_hashed_relative_artifacts(tmp_path):
    root = tmp_path / "arch"
    blob = tmp_path / "outside" / "trace.bin"
    blob.parent.mkdir()
    blob.write_bytes(b"\x01\x02\x03")
    archive = RunArchive(str(root), name="run1", meta={"seed": 3})
    archive.note(str(blob), "trace_spill")
    archive.add_json("cell.json", {"n": 1}, kind="bench_cell")
    path = archive.write()
    assert path == str(root / MANIFEST_NAME)

    manifest = load_manifest(str(root))  # dir or file both resolve
    assert manifest["schema"] == ARCHIVE_SCHEMA
    assert manifest["name"] == "run1"
    assert manifest["meta"] == {"seed": 3}
    entry = manifest["artifacts"]["trace.bin"]
    assert entry["kind"] == "trace_spill"
    assert entry["bytes"] == 3
    assert entry["sha256"] == hashlib.sha256(b"\x01\x02\x03").hexdigest()
    assert "/" in entry["path"] and "\\" not in entry["path"]
    assert resolve_artifact(manifest, "trace.bin") == str(blob)
    assert resolve_artifact(manifest, "cell.json") == str(root / "cell.json")


def test_note_dedupes_paths_and_suffixes_name_collisions(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    for sub in ("a", "b"):
        (tmp_path / sub / "trace.bin").write_bytes(b"x")
    archive = RunArchive(str(tmp_path / "arch"))
    first = archive.note(str(tmp_path / "a" / "trace.bin"), "trace_spill")
    again = archive.note(str(tmp_path / "a" / "trace.bin"), "json")
    other = archive.note(str(tmp_path / "b" / "trace.bin"), "trace_spill")
    assert first == again == "trace.bin"  # re-note updates kind in place
    assert other == "trace.bin-2"
    manifest = archive.manifest()
    assert manifest["artifacts"]["trace.bin"]["kind"] == "json"
    assert set(manifest["artifacts"]) == {"trace.bin", "trace.bin-2"}


def test_manifest_skips_missing_files_and_write_is_deterministic(tmp_path):
    archive = RunArchive(str(tmp_path / "arch"), meta={"seed": 0})
    archive.note(str(tmp_path / "never-written.bin"), "trace_spill")
    archive.write()
    first = (tmp_path / "arch" / MANIFEST_NAME).read_bytes()
    archive.write()
    assert (tmp_path / "arch" / MANIFEST_NAME).read_bytes() == first
    assert load_manifest(str(tmp_path / "arch"))["artifacts"] == {}


def test_load_manifest_rejects_wrong_schema(tmp_path):
    path = tmp_path / MANIFEST_NAME
    path.write_text(json.dumps({"schema": "repro.archive/999"}))
    with pytest.raises(ValueError, match="unsupported archive schema"):
        load_manifest(str(path))


def test_attach_hooks_spill_and_detach_stops_collection(tmp_path):
    sim = Simulator(seed=11)
    archive = RunArchive(str(tmp_path / "arch"))
    assert archive.attach(sim) is archive
    assert sim._run_archive is archive
    assert archive.meta["seed"] == 11  # defaulted from the simulator

    sim.trace.log("tick", n=1)
    spill = str(tmp_path / "trace.spill")
    sim.trace.spill_to(spill)  # TraceCollector self-registers
    manifest = archive.manifest()
    assert manifest["artifacts"]["trace.spill"]["kind"] == "trace_spill"
    assert manifest["meta"]["sim_time"] == sim.now

    archive.detach()
    assert sim._run_archive is None
    assert note_artifact(sim, spill, "trace_spill") is None  # no-op now


def test_from_manifest_round_trips_and_extends(tmp_path):
    root = tmp_path / "arch"
    archive = RunArchive(str(root), name="cellrun", meta={"seed": 5})
    archive.add_json("cell.json", {"rate": 10}, kind="bench_cell")
    archive.write()

    loaded = RunArchive.from_manifest(str(root / MANIFEST_NAME))
    assert loaded.name == "cellrun"
    assert loaded.meta == {"seed": 5}
    loaded.add_json("extra.json", {"more": True})
    loaded.write()
    manifest = load_manifest(str(root))
    assert set(manifest["artifacts"]) == {"cell.json", "extra.json"}
    assert manifest["artifacts"]["cell.json"]["kind"] == "bench_cell"


def test_env_attach_is_gated_and_idempotent(tmp_path, monkeypatch):
    sim = Simulator(seed=2)
    monkeypatch.delenv("REPRO_RUN_ARCHIVE", raising=False)
    assert maybe_attach_env_archive(sim) is None

    monkeypatch.setenv("REPRO_RUN_ARCHIVE", str(tmp_path / "arch"))
    archive = maybe_attach_env_archive(sim)
    assert archive is not None and sim._run_archive is archive
    assert maybe_attach_env_archive(sim) is archive  # second run(): reused


def test_experiment_run_writes_env_archive(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_ARCHIVE", str(tmp_path / "arch"))
    vini, exp = build_abilene_iias(seed=8)
    exp.run(until=2.0)
    manifest = load_manifest(str(tmp_path / "arch"))
    meta = manifest["meta"]
    assert meta["seed"] == 8
    assert meta["sim_time"] == 2.0
    assert meta["config_signature"] == experiment_signature(exp)
    assert meta["events"] > 0

    # The manifest is rewritten after every run() call...
    vini.run(until=3.0)
    meta = load_manifest(str(tmp_path / "arch"))["meta"]
    assert meta["sim_time"] == 3.0
    # ... and artifacts landing later still register:
    spill = str(tmp_path / "arch" / "trace.spill")
    vini.sim.trace.spill_to(spill)
    vini.sim._run_archive.write()
    assert "trace.spill" in load_manifest(str(tmp_path / "arch"))["artifacts"]


def test_experiment_signature_tracks_topology_and_timetable():
    _, exp_a = build_abilene_iias(seed=8)
    _, exp_b = build_abilene_iias(seed=8)
    assert experiment_signature(exp_a) == experiment_signature(exp_b)
    _, exp_c = build_abilene_iias(seed=9)
    # Same slice shape regardless of seed: the signature captures the
    # experiment, the seed is separate manifest metadata.
    assert experiment_signature(exp_c) == experiment_signature(exp_a)
