"""Tests for repro.obs.live: the live run observatory.

Four contracts:

* watchdogs (stall, livelock, rate) fire on the pathology, stay quiet
  on healthy runs, and re-arm only after the condition clears — all
  driven by synthetic clocks so no test ever sleeps;
* an ``abort`` watchdog stops a genuinely livelocked simulator from
  inside the engine's dispatch loop and leaves a diagnostic snapshot;
* the JSONL feed is wall-clock-free: same seed => byte-identical feed,
  even under wildly different synthetic clocks;
* the streaming exporters (FlightStream, spill sampler) write the
  *complete* series while in-memory retention stays under the
  configured ceiling.
"""

import io
import json
import os

import pytest

from repro.net.packet import OpaquePayload, Packet, UDPHeader
from repro.obs import (
    FlightRecorder,
    FlightStream,
    JsonlFeed,
    LiveMonitor,
    LivelockWatchdog,
    PeriodicSampler,
    RateWatchdog,
    StallWatchdog,
    Watchdog,
    maybe_attach_env_monitor,
)
from repro.obs.live import ENV_FEED, FEED_SCHEMA
from repro.sim import Simulator
from repro.tools import IperfTCPClient, IperfTCPServer
from repro.topologies import build_deter


def _advance(sim, t):
    """Run the sim forward to exactly ``t`` (a no-op event anchors it)."""
    sim.at(t, lambda: None)
    sim.run()


def _packet():
    return Packet([UDPHeader(1000, 2000)], payload=OpaquePayload(8))


# ----------------------------------------------------------------------
# JsonlFeed
# ----------------------------------------------------------------------
def test_jsonl_feed_sorted_keys_and_line_count():
    buf = io.StringIO()
    feed = JsonlFeed(buf)
    feed.emit({"b": 1, "a": 2})
    feed.emit({"z": 3})
    assert buf.getvalue() == '{"a": 2, "b": 1}\n{"z": 3}\n'
    assert feed.lines == 2
    feed.close()  # does not close a borrowed handle
    assert not buf.closed


def test_jsonl_feed_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "feed.jsonl"
    feed = JsonlFeed(str(path))
    feed.emit({"ok": True})
    feed.close()
    assert json.loads(path.read_text()) == {"ok": True}


# ----------------------------------------------------------------------
# Watchdog units (synthetic wall clocks; no sleeping)
# ----------------------------------------------------------------------
def test_watchdog_validation():
    with pytest.raises(ValueError):
        Watchdog(action="explode")
    with pytest.raises(ValueError):
        StallWatchdog(budget_s=0.0)
    with pytest.raises(ValueError):
        LivelockWatchdog(window_events=0)
    with pytest.raises(ValueError):
        RateWatchdog("x", lambda: 0, max_per_sim_s=0.0)
    with pytest.raises(ValueError):
        RateWatchdog("x", lambda: 0, max_per_sim_s=1.0, sustain=0)


def test_stall_watchdog_fires_on_stall_not_on_progress():
    sim = Simulator()
    monitor = LiveMonitor(sim)
    dog = StallWatchdog(budget_s=10.0, action="mark")
    assert dog.poll(monitor, 0.0) is None  # anchors progress
    assert dog.poll(monitor, 9.0) is None  # within budget
    detail = dog.poll(monitor, 11.0)  # 11s of wall, sim still at 0
    assert detail is not None and "no sim-time progress" in detail
    # Still stalled: already alarmed, no repeat until it clears.
    assert dog.poll(monitor, 20.0) is None
    # Sim-time progress clears and re-arms it.
    _advance(sim, 1.0)
    assert dog.poll(monitor, 21.0) is None
    assert not dog.fired
    # A second stall fires a second alarm.
    assert dog.poll(monitor, 32.0) is not None


def test_stall_watchdog_quiet_while_sim_advances():
    sim = Simulator()
    monitor = LiveMonitor(sim)
    dog = StallWatchdog(budget_s=5.0, action="mark")
    for i in range(10):
        _advance(sim, float(i + 1))
        assert dog.poll(monitor, i * 100.0) is None  # huge wall gaps: fine


def test_livelock_watchdog_fires_on_event_storm_without_sim_progress():
    sim = Simulator()
    monitor = LiveMonitor(sim)
    dog = LivelockWatchdog(window_events=100, min_sim_advance=1e-6,
                           action="mark")
    assert dog.poll(monitor, 0.0) is None  # anchors (now, seq)
    sim._seq += 1000  # storm: 1000 events scheduled, sim-time frozen
    detail = dog.poll(monitor, 1.0)
    assert detail is not None and "livelock" in detail
    # Same storm rate but sim-time advancing: healthy.
    sim._seq += 1000
    _advance(sim, 1.0)
    assert dog.poll(monitor, 2.0) is None
    assert not dog.fired


def test_rate_watchdog_requires_sustained_excess():
    sim = Simulator()
    monitor = LiveMonitor(sim)
    state = {"v": 0.0}
    dog = RateWatchdog("churn", lambda: state["v"], max_per_sim_s=10.0,
                       sustain=2, action="mark")
    assert dog.poll(monitor, 0.0) is None  # anchor at (t=0, v=0)
    _advance(sim, 1.0)
    state["v"] = 100.0  # 100/sim-s: hot, but only once
    assert dog.poll(monitor, 1.0) is None
    _advance(sim, 2.0)
    state["v"] = 200.0  # second consecutive hot poll: fires
    detail = dog.poll(monitor, 2.0)
    assert detail is not None and "churn" in detail
    # One cool poll resets both the sustain counter and the alarm.
    _advance(sim, 3.0)
    state["v"] = 205.0  # 5/sim-s
    assert dog.poll(monitor, 3.0) is None
    assert not dog.fired and dog._hot == 0
    _advance(sim, 4.0)
    state["v"] = 300.0
    assert dog.poll(monitor, 4.0) is None  # hot again, not yet sustained


def test_rate_watchdog_ignores_polls_without_sim_advance():
    sim = Simulator()
    monitor = LiveMonitor(sim)
    state = {"v": 0.0}
    dog = RateWatchdog("churn", lambda: state["v"], max_per_sim_s=1.0,
                       sustain=1, action="mark")
    assert dog.poll(monitor, 0.0) is None
    state["v"] = 1e9  # no sim-time denominator: no rate, no fire
    assert dog.poll(monitor, 1.0) is None


# ----------------------------------------------------------------------
# Monitor: probes, alarms, lifecycle
# ----------------------------------------------------------------------
def test_monitor_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        LiveMonitor(sim, interval=0.0)
    with pytest.raises(ValueError):
        LiveMonitor(sim, wall_interval=-1.0)
    with pytest.raises(ValueError):
        LiveMonitor(sim, poll_stride=0)
    monitor = LiveMonitor(sim).watch("x", lambda: 1)
    with pytest.raises(ValueError):
        monitor.watch("x", lambda: 2)  # duplicate probe key


def test_feed_header_and_snapshot_shape():
    sim = Simulator(seed=7)
    buf = io.StringIO()
    monitor = LiveMonitor(sim, interval=1.0, feed=buf)
    monitor.watch("answer", lambda: 42)
    monitor.install()
    sim.run(until=2.5)
    monitor.stop(final=True)
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    header, rows = lines[0], lines[1:]
    assert header == {"schema": FEED_SCHEMA, "name": "live",
                      "interval": 1.0, "seed": 7}
    # Anchor at install, t=1, t=2, final at stop: sim-keyed, wall-free.
    assert [row["t"] for row in rows] == [0.0, 1.0, 2.0, 2.5]
    assert [row["i"] for row in rows] == [0, 1, 2, 3]
    for row in rows:
        assert set(row) == {"i", "t", "events", "pending", "probes"}
        assert row["probes"] == {"answer": 42}
    assert monitor.snapshots == 4


def test_mark_alarm_is_recorded_without_stopping_the_sim(capsys):
    sim = Simulator()
    wall = {"t": 0.0}
    monitor = LiveMonitor(sim, wall_interval=0.0, clock=lambda: wall["t"])
    monitor.add_watchdog(StallWatchdog(budget_s=5.0, action="mark"))
    monitor._wall_poll()  # anchors wall state
    wall["t"] = 10.0
    monitor._wall_poll()  # watchdog anchors its own progress marker
    wall["t"] = 20.0
    monitor._wall_poll()  # 10s stalled > 5s budget: fires
    (alarm,) = monitor.alarms
    assert alarm.action == "mark" and alarm.watchdog == "stall"
    assert alarm.sim_t == 0.0 and alarm.events == sim._seq
    assert monitor.diagnostic is None  # mark never writes a diagnostic
    assert not sim._stopped
    assert "ALARM stall" in capsys.readouterr().err


def test_abort_watchdog_stops_a_livelocked_run(tmp_path, capsys):
    """The end-to-end pathology: a self-feeding call_soon storm never
    advances sim-time and never leaves the engine's merge loop, so only
    the dispatch-loop hook can see it. The stall watchdog must abort
    the run (instead of hanging forever) and leave a diagnostic."""
    sim = Simulator(seed=1)
    wall = {"t": 0.0}

    def clock():
        wall["t"] += 1.0  # each poll advances fake wall-clock by 1s
        return wall["t"]

    feed_path = str(tmp_path / "storm.jsonl")
    monitor = LiveMonitor(sim, interval=1.0, wall_interval=0.0,
                          feed=feed_path, clock=clock, poll_stride=1)
    monitor.add_watchdog(StallWatchdog(budget_s=3.0, action="abort"))
    monitor.install()

    def storm():
        sim.call_soon(storm)

    sim.call_soon(storm)
    sim.run(until=10.0)  # returns: the abort stopped it

    assert sim.now == 0.0  # never made sim progress
    (alarm,) = monitor.alarms
    assert alarm.action == "abort" and alarm.watchdog == "stall"
    assert monitor.diagnostic is not None
    diag = json.loads(open(feed_path + ".diag.json").read())
    assert diag["alarm"]["watchdog"] == "stall"
    assert diag["snapshot"]["t"] == 0.0
    capsys.readouterr()  # swallow the alarm line


def test_monitor_stop_is_idempotent_and_unhooks_the_engine():
    sim = Simulator()
    monitor = LiveMonitor(sim, feed=io.StringIO()).install()
    assert sim._live_hook is not None
    monitor.stop()
    assert sim._live_hook is None
    before = monitor.snapshots
    monitor.stop()  # second stop: no extra final snapshot
    assert monitor.snapshots == before


def test_as_dict_reports_snapshots_and_alarms():
    sim = Simulator()
    monitor = LiveMonitor(sim, interval=0.5).install()
    sim.run(until=1.0)
    monitor.stop()
    section = monitor.as_dict()
    assert section["name"] == "live" and section["interval"] == 0.5
    assert section["snapshots"] == monitor.snapshots
    assert section["alarms"] == []


def test_build_report_renders_live_section():
    from repro.obs.report import build_report

    sim = Simulator()
    monitor = LiveMonitor(sim, interval=1.0).install()
    sim.run(until=2.0)
    monitor.stop()
    report = build_report(sim, name="t", monitor=monitor)
    assert report.data["live"]["snapshots"] == monitor.snapshots
    assert "## Live monitor" in report.to_markdown()


# ----------------------------------------------------------------------
# Feed determinism: same seed => byte-identical, wall-clock-free
# ----------------------------------------------------------------------
def _deter_feed(seed: int, clock) -> str:
    buf = io.StringIO()
    vini = build_deter(seed=seed)
    monitor = LiveMonitor(vini.sim, interval=0.25, feed=buf, clock=clock,
                          wall_interval=0.0, poll_stride=1)
    monitor.watch_engine()
    monitor.add_watchdog(StallWatchdog(budget_s=1e9, action="mark"))
    monitor.install()
    server = IperfTCPServer(vini.nodes["sink"])
    IperfTCPClient(
        vini.nodes["src"], vini.nodes["sink"].address,
        streams=4, duration=0.5, server=server,
    ).start()
    vini.run(until=1.0)
    monitor.stop(final=True)
    return buf.getvalue()


def test_same_seed_live_feed_is_byte_identical():
    """Two runs under *different* synthetic wall clocks (one 1000x
    faster than the other) must still produce byte-identical feeds:
    snapshot selection and content are both purely sim-keyed."""
    slow = {"t": 0.0}
    fast = {"t": 0.0}

    def slow_clock():
        slow["t"] += 0.001
        return slow["t"]

    def fast_clock():
        fast["t"] += 1.0
        return fast["t"]

    first = _deter_feed(11, slow_clock)
    second = _deter_feed(11, fast_clock)
    assert first == second
    rows = [json.loads(line) for line in first.splitlines()]
    assert rows[0]["schema"] == FEED_SCHEMA
    assert len(rows) > 4  # header + anchor + periodic + final
    assert rows[-1]["t"] == 1.0
    # Engine probes made it into every snapshot.
    assert "engine.batches" in rows[1]["probes"]


def test_different_seed_changes_feed_content():
    clock = iter(range(1, 10 ** 6))
    a = _deter_feed(11, lambda: float(next(clock)))
    b = _deter_feed(12, lambda: float(next(clock)))
    assert a != b  # seed lands in the header and events differ


# ----------------------------------------------------------------------
# Env-driven attachment (REPRO_LIVE_FEED)
# ----------------------------------------------------------------------
def test_maybe_attach_env_monitor_absent_env_is_a_no_op(monkeypatch):
    monkeypatch.delenv(ENV_FEED, raising=False)
    sim = Simulator()
    assert maybe_attach_env_monitor(sim) is None
    assert sim._live_hook is None


def test_maybe_attach_env_monitor_installs_once(tmp_path, monkeypatch):
    path = str(tmp_path / "env_feed.jsonl")
    monkeypatch.setenv(ENV_FEED, path)
    sim = Simulator(seed=3)
    monitor = maybe_attach_env_monitor(sim, until=5.0)
    assert monitor is not None and monitor.until == 5.0
    again = maybe_attach_env_monitor(sim, until=9.0)
    assert again is monitor and monitor.until == 9.0  # idempotent
    monitor.stop()
    rows = [json.loads(line) for line in open(path)]
    assert rows[0]["schema"] == FEED_SCHEMA and rows[0]["seed"] == 3


def test_env_monitor_attaches_through_vini_run(tmp_path, monkeypatch):
    path = str(tmp_path / "vini_feed.jsonl")
    monkeypatch.setenv(ENV_FEED, path)
    vini = build_deter(seed=2)
    vini.run(until=0.5)
    monitor = vini.sim._env_live_monitor
    assert monitor is not None and monitor.until == 0.5
    monitor.stop()
    rows = [json.loads(line) for line in open(path)]
    assert rows[0]["schema"] == FEED_SCHEMA
    assert rows[-1]["t"] == 0.5


# ----------------------------------------------------------------------
# Streaming flight export: complete trace, bounded memory
# ----------------------------------------------------------------------
def test_flight_stream_writes_complete_trace_under_memory_ceiling(tmp_path):
    path = str(tmp_path / "flights.perfetto.json")
    sim = Simulator()
    stream = FlightStream(path, fmt="perfetto", chunk_flights=8)
    recorder = FlightRecorder(sim, capacity=4, stream=stream).install()
    max_buffered = 0
    for i in range(100):
        packet = _packet()
        recorder.flight_begin(packet, "probe", node=f"n{i % 3}")
        recorder.stage(packet, "hop", node=f"n{(i + 1) % 3}")
        recorder.flight_end(packet)
        max_buffered = max(max_buffered, stream.buffered)
    recorder.close_stream()
    # The memory ceiling held on both sides of the pipe...
    assert len(recorder.flights()) <= 4
    assert max_buffered <= 8
    # ... yet the on-disk trace is complete and valid.
    assert stream.flights_written == recorder.flights_completed == 100
    doc = json.loads(open(path).read())
    flights = [e for e in doc["traceEvents"] if e.get("cat") == "flight"]
    assert len(flights) == 100
    stages = [e for e in doc["traceEvents"] if e.get("cat") == "stage"]
    assert len(stages) == 200  # "origin" + "hop" per flight
    # Further adds after close are an error, close is idempotent.
    with pytest.raises(RuntimeError):
        stream.add(flights[0])
    assert stream.close() == path


def test_flight_stream_jsonl_format(tmp_path):
    path = str(tmp_path / "flights.jsonl")
    sim = Simulator()
    stream = FlightStream(path, fmt="jsonl", chunk_flights=2)
    recorder = FlightRecorder(sim, capacity=2, stream=stream).install()
    for _ in range(5):
        packet = _packet()
        recorder.flight_begin(packet, "probe", node="a")
        recorder.flight_end(packet)
    recorder.close_stream()
    rows = [json.loads(line) for line in open(path)]
    assert len(rows) == 5
    for row in rows:
        assert row["kind"] == "flight" and row["status"] == "ok"
        assert row["stages"] == [["origin", "a", 0.0, 0.0]]


def test_flight_stream_validation_and_empty_close(tmp_path):
    with pytest.raises(ValueError):
        FlightStream("x", fmt="csv")
    with pytest.raises(ValueError):
        FlightStream("x", chunk_flights=0)
    path = str(tmp_path / "empty.perfetto.json")
    stream = FlightStream(path)
    stream.close()
    assert json.loads(open(path).read()) == {
        "displayTimeUnit": "ms", "traceEvents": []
    }


def test_flight_stream_same_seed_files_are_byte_identical(tmp_path):
    def produce(path):
        sim = Simulator(seed=4)
        stream = FlightStream(path, chunk_flights=3)
        recorder = FlightRecorder(sim, capacity=2, stream=stream).install()
        for i in range(10):
            packet = _packet()
            sim.at(float(i), lambda p=packet: recorder.flight_begin(
                p, "probe", node=f"n{i % 2}"))
            sim.at(i + 0.5, lambda p=packet: recorder.flight_end(p))
        sim.run()
        recorder.close_stream()
        return open(path, "rb").read()

    first = produce(str(tmp_path / "a.json"))
    second = produce(str(tmp_path / "b.json"))
    assert first == second


# ----------------------------------------------------------------------
# Sampler spill: complete on-disk series, bounded memory
# ----------------------------------------------------------------------
def test_sampler_spill_keeps_memory_bounded_and_series_complete(tmp_path):
    path = str(tmp_path / "series.csv")
    sim = Simulator()
    counter = sim.metrics.counter("ticks")
    sim.schedule_periodic(0.1, counter.inc)
    sampler = PeriodicSampler(
        sim, 0.1, name="s", max_points=10, retention="spill",
        spill_path=path,
    ).watch("ticks", metric=counter).start()
    sim.run(until=5.0)
    assert len(sampler.series("ticks")) <= 10  # ceiling held while live
    assert sampler.spilled_rows > 0  # ... because it actually spilled
    sampler.stop(final=True)
    sampler.finish()
    lines = open(path).read().splitlines()
    assert lines[0] == "key,time,value,count,sum"
    rows = [line.split(",") for line in lines[1:]]
    # Disk holds the complete series: spilled prefix + retained tail.
    assert len(rows) == sampler.spilled_rows
    times = [float(r[1]) for r in rows]
    assert times[0] == 0.0 and times[-1] == 5.0
    assert times == sorted(times) and len(times) == len(set(times))
    # Values are the monotone counter: the series round-trips intact.
    values = [int(float(r[2])) for r in rows]
    assert values == sorted(values)
    assert sampler.finish() == path  # idempotent


def test_sampler_spill_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 1.0, retention="spill")  # no spill_path
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 1.0, retention="spill", spill_path="x")  # no cap
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 1.0, retention="tail", max_points=4,
                        spill_path="x")  # path without spill retention


def test_sampler_spill_after_finish_is_an_error(tmp_path):
    path = str(tmp_path / "series.csv")
    sim = Simulator()
    sampler = PeriodicSampler(
        sim, 1.0, max_points=2, retention="spill", spill_path=path,
    ).watch("x", fn=lambda: 1).start()
    sim.run(until=3.0)
    sampler.stop()
    sampler.finish()
    with pytest.raises(RuntimeError):
        sampler._spill("x", [(4.0, 1)])


# ----------------------------------------------------------------------
# Status line: TTY-aware suppression
# ----------------------------------------------------------------------
class _FakeTTY(io.StringIO):
    def isatty(self):
        return True


def test_status_line_refreshes_in_place_on_a_tty():
    sim = Simulator()
    status = _FakeTTY()
    monitor = LiveMonitor(sim, status=status, clock=lambda: 1.0)
    monitor._refresh_status(1.0)
    monitor._refresh_status(2.0)
    text = status.getvalue()
    assert "\r\x1b[2K" in text  # in-place rewrite, no scrollback spam
    assert monitor.status_refreshes == 2


def test_status_line_is_suppressed_when_stream_is_not_a_tty():
    """Piped/redirected output (CI logs) must not fill with carriage
    returns: non-TTY targets get only final newline-terminated lines."""
    sim = Simulator()
    status = io.StringIO()  # isatty() -> False
    monitor = LiveMonitor(sim, status=status, clock=lambda: 1.0)
    monitor._refresh_status(1.0)  # in-place refresh: swallowed
    monitor._refresh_status(2.0)
    assert status.getvalue() == ""
    assert monitor.status_refreshes == 0
    monitor._refresh_status(3.0, newline=True)  # final line still lands
    text = status.getvalue()
    assert text.endswith("\n") and "\r" not in text and "\x1b" not in text
    assert monitor.status_refreshes == 1


def test_status_stream_without_isatty_counts_as_non_tty():
    class NoIsatty:
        def write(self, text):
            pass

        def flush(self):
            pass

    NoIsatty.isatty = property(lambda self: (_ for _ in ()).throw(
        AttributeError("no isatty")))
    sim = Simulator()
    monitor = LiveMonitor(sim, status=NoIsatty(), clock=lambda: 1.0)
    assert monitor._status_tty is False
