"""Tests for repro.obs.spans + the flight CLI: span propagation across
COW copies and tunnel encap/decap, exact latency decomposition,
retention policies, golden-trace passivity, and Perfetto determinism."""

import json

import pytest

from repro.net.packet import OpaquePayload, Packet, UDPHeader
from repro.obs import FlightRecorder, NULL_RECORDER, perfetto_json
from repro.obs.flight import run_flights
from repro.sim import Simulator


def _packet():
    return Packet([UDPHeader(1000, 2000)], payload=OpaquePayload(8))


# ----------------------------------------------------------------------
# Span context propagation (satellite 5a)
# ----------------------------------------------------------------------
def test_packet_span_defaults_to_none():
    assert _packet().span is None


def test_span_shared_across_cow_copy_and_uniqueify():
    sim = Simulator()
    recorder = FlightRecorder(sim).install()
    packet = _packet()
    ctx = recorder.flight_begin(packet, "probe", node="a")
    shallow = packet.copy()
    deep = packet.copy(deep=True)
    assert shallow.span is ctx and deep.span is ctx
    # uniqueify() replaces the header list in place; identity survives.
    shallow.uniqueify()
    assert shallow.span is ctx
    # Later id mutations are visible through every clone: one flight.
    recorder.stage(packet, "hop", node="b")
    assert shallow.span.span_id == packet.span.span_id
    assert deep.span.trace_id == ctx.trace_id


def test_null_recorder_is_the_default_and_inert():
    sim = Simulator()
    assert sim.flight is NULL_RECORDER
    assert not sim.flight.enabled
    packet = _packet()
    assert sim.flight.flight_begin(packet, "x") is None
    assert packet.span is None
    sim.flight.stage(packet, "y")
    sim.flight.flight_end(packet)
    assert sim.flight.flights() == []
    assert sim.flight.slowest() == []
    assert sim.flight.control_spans() == []


# ----------------------------------------------------------------------
# Stage-transition tiling
# ----------------------------------------------------------------------
def test_stages_tile_flight_exactly():
    sim = Simulator()
    recorder = FlightRecorder(sim).install()
    packet = _packet()

    sim.at(1.0, lambda: recorder.flight_begin(packet, "probe", node="a",
                                              stage="send"))
    sim.at(1.5, lambda: recorder.stage(packet, "queue", node="a"))
    sim.at(2.25, lambda: recorder.stage(packet, "transit", node="a--b"))
    sim.at(4.0, lambda: recorder.flight_end(packet, node="b"))
    sim.run()

    (flight,) = recorder.flights()
    assert flight.status == "ok"
    assert flight.duration == 3.0
    stages = flight.stage_durations()
    assert [(n, d) for n, _l, d in stages] == [
        ("send", 0.5), ("queue", 0.75), ("transit", 1.75)]
    # Gap-free: each stage opens when the previous closes.
    assert flight.spans[0].start == flight.start
    for prev, cur in zip(flight.spans, flight.spans[1:]):
        assert cur.start == prev.end
    assert flight.spans[-1].end == flight.end
    assert sum(d for _n, _l, d in stages) == flight.duration
    assert flight.stage_totals() == {"send": 0.5, "queue": 0.75,
                                     "transit": 1.75}


def test_flight_drop_records_reason():
    sim = Simulator()
    recorder = FlightRecorder(sim).install()
    packet = _packet()
    recorder.flight_begin(packet, "probe", node="a")
    recorder.flight_drop(packet, "queue_overflow", node="a")
    (flight,) = recorder.flights()
    assert flight.status == "dropped:queue_overflow"
    # The flight is closed: further stages are no-ops.
    recorder.stage(packet, "late", node="b")
    assert len(flight.spans) == 1


# ----------------------------------------------------------------------
# Retention policies
# ----------------------------------------------------------------------
def _run_flights_with_durations(policy, capacity, durations):
    sim = Simulator()
    recorder = FlightRecorder(sim, capacity=capacity, policy=policy)
    recorder.install()
    for index, duration in enumerate(durations):
        packet = _packet()
        sim.at(10.0 * index, lambda p=packet: recorder.flight_begin(
            p, "probe"))
        sim.at(10.0 * index + duration, lambda p=packet:
               recorder.flight_end(p))
    sim.run()
    return recorder


def test_retention_head_tail_slowest_all():
    durations = [5.0, 1.0, 9.0, 3.0, 7.0]

    head = _run_flights_with_durations("head", 2, durations)
    assert [f.duration for f in head.flights()] == [5.0, 1.0]
    assert head.flights_evicted == 3

    tail = _run_flights_with_durations("tail", 2, durations)
    assert [f.duration for f in tail.flights()] == [3.0, 7.0]
    assert tail.flights_evicted == 3

    slowest = _run_flights_with_durations("slowest", 2, durations)
    assert sorted(f.duration for f in slowest.flights()) == [7.0, 9.0]
    assert slowest.flights_evicted == 3
    assert [f.duration for f in slowest.slowest(2)] == [9.0, 7.0]

    everything = _run_flights_with_durations("all", 2, durations)
    assert len(everything.flights()) == 5
    assert everything.flights_evicted == 0
    assert everything.flights_completed == 5


def test_recorder_validates_arguments():
    sim = Simulator()
    with pytest.raises(ValueError):
        FlightRecorder(sim, policy="newest")
    with pytest.raises(ValueError):
        FlightRecorder(sim, capacity=0)


# ----------------------------------------------------------------------
# Control-plane spans + the reroute causality link (Fig 8)
# ----------------------------------------------------------------------
def test_mark_reroute_links_first_staged_packet():
    sim = Simulator()
    recorder = FlightRecorder(sim).install()
    root = recorder.span_begin("ospf.convergence", node="denver")
    fib = recorder.instant("ospf.fib_update", node="denver", parent=root)
    recorder.span_end(root)
    recorder.mark_reroute("denver", fib)

    other = _packet()
    recorder.flight_begin(other, "probe", node="kansascity")
    recorder.stage(other, "hop", node="kansascity")  # wrong node: no link
    packet = _packet()
    recorder.flight_begin(packet, "probe", node="denver")
    recorder.stage(packet, "hop", node="denver")     # arms the instant
    recorder.stage(packet, "hop2", node="denver")    # fires only once

    instants = [s for s in recorder.control_spans()
                if s.name == "reroute.first_packet"]
    assert len(instants) == 1
    (instant,) = instants
    assert instant.parent_id == fib.span_id
    assert instant.trace_id == root.trace_id
    assert instant.meta["flight"] == packet.span.trace_id


def test_control_span_tree_parentage():
    sim = Simulator()
    recorder = FlightRecorder(sim).install()
    root = recorder.span_begin("ospf.convergence", node="r1")
    child = recorder.span_begin("ospf.spf_wait", node="r1", parent=root)
    recorder.span_end(child)
    recorder.span_end(root)
    recorder.span_end(root)  # double-close is a no-op
    spans = recorder.control_spans()
    assert [s.name for s in spans] == ["ospf.spf_wait", "ospf.convergence"]
    assert spans[0].parent_id == root.span_id
    assert spans[0].trace_id == root.trace_id


def test_ospf_failure_emits_convergence_span_tree():
    """Failing a link in the overlay produces the Fig-8 causal chain:
    convergence root -> detection/LSA instants -> SPF -> FIB update."""
    from repro.faults import FaultPlan
    from repro.obs.flight import build_world

    vini, exp = build_world("plvini", seed=5, loaded=False, warmup=12.0)
    recorder = FlightRecorder(vini.sim, capacity=64).install()
    exp.apply_faults(
        FaultPlan("t").fail_link(2.0, "chicago", "newyork", duration=30.0),
        offset=vini.sim.now,
    )
    vini.run(until=vini.sim.now + 20.0)
    names = {s.name for s in recorder.control_spans()}
    assert "ospf.convergence" in names
    assert "ospf.spf_wait" in names
    assert "ospf.spf_recompute" in names
    assert "ospf.fib_update" in names
    assert "ospf.neighbor_down" in names or "ospf.lsa_receive" in names
    # Every non-root span belongs to a convergence tree.
    roots = {s.span_id for s in recorder.control_spans()
             if s.name == "ospf.convergence"}
    for span in recorder.control_spans():
        if span.name != "ospf.convergence":
            assert span.parent_id != 0


# ----------------------------------------------------------------------
# End-to-end: Table-5 ping decomposition (the headline)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def plvini_run():
    return run_flights(config="plvini", count=8, interval=0.1, seed=3,
                       warmup=12.0, loaded=False, policy="all")


def test_overlay_flight_crosses_tunnel_encap_decap(plvini_run):
    recorder, _ping = plvini_run
    flights = [f for f in recorder.flights() if f.status == "ok"]
    assert flights
    for flight in flights:
        names = [name for name, _node, _d in flight.stage_durations()]
        assert names[0] == "host.send"
        assert "tunnel.encap" in names and "tunnel.decap" in names
        assert "link.transit" in names
        assert "host.echo" in names  # the reply continued the same trace


def test_stage_durations_sum_to_rtt(plvini_run):
    recorder, ping = plvini_run
    flights = [f for f in recorder.flights() if f.status == "ok"]
    rtts = sorted(rtt for _t, _s, rtt in ping.samples)
    assert len(flights) == len(rtts) == 8
    assert sorted(f.duration for f in flights) == rtts
    for flight in flights:
        total = sum(d for _n, _l, d in flight.stage_durations())
        assert abs(total - flight.duration) <= 1e-6  # ISSUE tolerance
        # Stage spans are strictly gap-free, so in practice it is exact.
        assert total == flight.duration


def test_recorder_is_passive_golden_trace(plvini_run):
    """The event stream is byte-identical with the recorder off AND on:
    recording never schedules events or perturbs order."""
    recorder, ping = plvini_run

    def trace_of(install):
        from repro.obs.flight import build_world, endpoints
        from repro.tools.ping import Ping

        vini, exp = build_world("plvini", seed=3, loaded=False, warmup=12.0)
        if install:
            FlightRecorder(vini.sim, policy="all").install()
        src, sliver, dst = endpoints(vini, exp)
        ping = Ping(src, dst, sliver=sliver, interval=0.1, count=8).start()
        vini.run(until=vini.sim.now + 8 * 0.1 + 5.0)
        return [(r.time, r.kind, r.fields) for r in vini.sim.trace.records]

    off = trace_of(False)
    on = trace_of(True)
    assert off == on
    # And the instrumented run above saw the same RTTs.
    assert sorted(f.duration for f in recorder.flights()
                  if f.status == "ok") == sorted(
        rtt for _t, _s, rtt in ping.samples)


def test_perfetto_json_same_seed_byte_identical():
    def run():
        # The ICMP ident counter is per-simulator, so an in-process
        # rerun matches what two fresh same-seed processes produce.
        recorder, _ = run_flights(config="plvini", count=8, interval=0.1,
                                  seed=3, warmup=12.0, loaded=False,
                                  policy="all")
        return perfetto_json(recorder)

    text = run()
    assert run() == text
    payload = json.loads(text)
    events = payload["traceEvents"]
    cats = {e.get("cat") for e in events}
    assert "flight" in cats and "stage" in cats
    # Every event references a declared process.
    pids = {e["pid"] for e in events if e["ph"] == "M"}
    assert all(e["pid"] in pids for e in events)
    # Durations are non-negative microseconds.
    assert all(e.get("dur", 0) >= 0 for e in events)


def test_flight_cli_main(tmp_path, capsys):
    from repro.obs.flight import main

    out = str(tmp_path / "trace.json")
    code = main(["--config", "plvini", "--count", "6", "--seed", "3",
                 "--warmup", "12", "--unloaded", "--slowest", "2",
                 "--export", out])
    assert code == 0
    text = capsys.readouterr().out
    assert "6 transmitted, 6 received" in text
    assert "tunnel.encap" in text
    assert "sum-vs-rtt err 0 us" in text
    with open(out) as handle:
        assert json.load(handle)["traceEvents"]
