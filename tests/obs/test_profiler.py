"""Unit tests for repro.obs.profiler: attribution and zero-cost-off."""

import pytest

from repro.obs import Profiler
from repro.sim import Simulator
from repro.sim.timer import PeriodicTimer


class FakeClock:
    """Deterministic wall clock: each read advances by ``step``."""

    def __init__(self, step: float = 0.001):
        self.t = 0.0
        self.step = step

    def __call__(self) -> float:
        self.t += self.step
        return self.t


def test_profiler_not_installed_by_default():
    sim = Simulator()
    assert sim._profiler is None
    prof = Profiler(sim)
    assert not prof.installed
    prof.install()
    assert sim._profiler is prof
    prof.remove()
    assert sim._profiler is None


def test_profiler_counts_and_times_events():
    sim = Simulator()
    prof = Profiler(sim, clock=FakeClock())
    fired = []
    sim.at(1.0, lambda: fired.append(1))
    sim.at(2.0, lambda: fired.append(2))
    with prof:
        sim.run()
    assert fired == [1, 2]
    assert prof.event_count == 2
    assert prof.event_seconds > 0
    rows = prof.report()
    assert rows[-1]["component"] == "(engine loop)"
    assert sum(r["events"] for r in rows) == 2


def test_profiler_classifies_by_owner_module():
    sim = Simulator()

    class Daemon:
        def tick(self):
            pass

    Daemon.__module__ = "repro.routing.ospf"
    daemon = Daemon()
    prof = Profiler(sim, clock=FakeClock())
    sim.at(1.0, daemon.tick)
    with prof:
        sim.run()
    assert "routing.ospf" in prof._stats


def test_profiler_unwraps_periodic_timer():
    """A PeriodicTimer wrapping an OSPF-ish callback bills the callback's
    owner, not the timer."""
    sim = Simulator()

    class Daemon:
        def __init__(self):
            self.fires = 0

        def hello(self):
            self.fires += 1

    Daemon.__module__ = "repro.routing.ospf"
    daemon = Daemon()
    # jitter > 0 routes every firing through the timer's _fire wrapper,
    # the case the profiler must unwrap.
    timer = PeriodicTimer(sim, 1.0, daemon.hello, jitter=0.2)
    prof = Profiler(sim, clock=FakeClock())
    with prof:
        sim.run(until=3.0)
    timer.stop()
    assert daemon.fires >= 3
    assert prof._stats.get("routing.ospf", [0, 0])[0] == daemon.fires
    assert not any(key.startswith("engine") for key in prof._stats)


def test_profiler_report_and_format():
    sim = Simulator()
    prof = Profiler(sim, clock=FakeClock())
    sim.at(1.0, lambda: None)
    with prof:
        sim.run()
    rows = prof.report()
    assert rows == sorted(rows[:-1], key=lambda r: (-r["seconds"], r["component"])) + [rows[-1]]
    text = prof.format_report()
    assert "component" in text and "total" in text
    prof.reset()
    assert prof.event_count == 0
    assert prof.loop_seconds == 0.0


def test_profiler_identical_trace_with_and_without():
    """Installing a profiler never perturbs the simulated world."""

    def run(profiled: bool):
        sim = Simulator(seed=5)
        counter = {"n": 0}

        def work():
            counter["n"] += 1
            sim.trace.log("w", n=counter["n"])

        sim.schedule_periodic(0.2, work)
        prof = Profiler(sim) if profiled else None
        if prof is not None:
            prof.install()
        sim.run(until=3.0)
        return [(r.time, r.kind, sorted(r.fields.items())) for r in sim.trace.records]

    assert run(True) == run(False)


def test_profiler_step_dispatch():
    sim = Simulator()
    prof = Profiler(sim, clock=FakeClock()).install()
    sim.at(1.0, lambda: None)
    assert sim.step() is True
    assert prof.event_count == 1


def test_profiler_sim_timebase_charges_virtual_gaps():
    """In sim mode each event is billed the sim-time gap since the
    previous dispatch: the world's waiting is attributed, not CPU."""
    sim = Simulator()

    class Fast:
        def tick(self):
            pass

    class Slow:
        def tick(self):
            pass

    Fast.__module__ = "repro.net.udp"
    Slow.__module__ = "repro.routing.ospf"
    fast, slow = Fast(), Slow()
    sim.at(1.0, fast.tick)   # first dispatch: no predecessor, 0 s
    sim.at(3.0, slow.tick)   # 2 s of virtual waiting billed to OSPF
    sim.at(3.5, fast.tick)   # 0.5 s billed to the Fast component
    prof = Profiler(sim, timebase="sim")
    with prof:
        sim.run()
    assert prof._stats["net.Fast"] == [2, 0.5]
    assert prof._stats["routing.ospf"] == [1, 2.0]
    # Loop span is measured on the same (sim) clock.
    assert prof.loop_seconds == pytest.approx(3.5)
    prof.reset()
    assert prof._last_sim is None


def test_profiler_timebase_validation_and_default():
    sim = Simulator()
    assert Profiler(sim).timebase == "wall"
    with pytest.raises(ValueError):
        Profiler(sim, timebase="cpu")
