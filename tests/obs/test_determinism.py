"""Determinism and cost guarantees of the observability layer.

Three contracts:

* same seed => byte-identical JSONL export of the registry;
* a metrics-disabled world replays the golden Fig-8 failover trace
  byte-identically to a metrics-enabled one — instrumentation observes,
  it never perturbs;
* metrics collection costs the engine hot loop nothing measurable
  (instrumentation is pull-based; the loop itself is untouched).
"""

import time

import pytest

from benchmarks.bench_core_engine import run_engine_cell
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry, registry_jsonl
from repro.tools import IperfTCPClient, IperfTCPServer, Ping
from repro.topologies import build_abilene_iias, build_deter

WARMUP = 40.0


# ----------------------------------------------------------------------
# Same seed => byte-identical export
# ----------------------------------------------------------------------
def _deter_jsonl(seed: int) -> str:
    vini = build_deter(seed=seed)
    server = IperfTCPServer(vini.nodes["sink"])
    IperfTCPClient(
        vini.nodes["src"], vini.nodes["sink"].address,
        streams=4, duration=0.5, server=server,
    ).start()
    vini.run(until=1.0)
    return registry_jsonl(vini.sim.metrics, extra={"seed": seed})


def test_same_seed_exports_byte_identical_jsonl():
    first = _deter_jsonl(seed=11)
    second = _deter_jsonl(seed=11)
    assert first == second
    assert "iperf.tcp.bytes_received" in first
    assert "cpu.busy_seconds" in first


def test_different_seed_changes_the_numbers_not_the_schema():
    import json

    a = [json.loads(line) for line in _deter_jsonl(11).strip().split("\n")]
    b = [json.loads(line) for line in _deter_jsonl(12).strip().split("\n")]
    assert [(r["name"], r["labels"]) for r in a] == [
        (r["name"], r["labels"]) for r in b
    ]


# ----------------------------------------------------------------------
# Disabled registry => golden Fig-8 trace unchanged
# ----------------------------------------------------------------------
def _serialize(sim) -> str:
    return "\n".join(
        f"{r.time:.9f} {r.kind} {sorted(r.fields.items())!r}"
        for r in sim.trace.records
    )


def _fig8_trace(metrics_enabled: bool, live: bool = False):
    old = MetricsRegistry.default_enabled
    MetricsRegistry.default_enabled = metrics_enabled
    try:
        vini, exp = build_abilene_iias(seed=8)
        if live:
            import io

            from repro.obs import LiveMonitor, LivelockWatchdog, StallWatchdog

            monitor = LiveMonitor(vini.sim, interval=1.0, feed=io.StringIO())
            monitor.watch_engine().watch_queues().watch_cpu()
            monitor.add_watchdog(StallWatchdog(budget_s=600.0, action="mark"))
            monitor.add_watchdog(LivelockWatchdog(action="mark"))
            monitor.install()
        exp.run(until=WARMUP)
        plan = FaultPlan("fig8").fail_link(
            10.0, "denver", "kansascity", duration=24.0
        )
        exp.apply_faults(plan, offset=WARMUP)
        washington = exp.network.nodes["washington"]
        seattle = exp.network.nodes["seattle"]
        Ping(
            washington.phys_node, seattle.tap_addr, sliver=washington.sliver,
            interval=0.5, count=44,
        ).start()
        vini.run(until=WARMUP + 25.0)
        if live:
            monitor.stop()
        return _serialize(vini.sim), len(vini.sim.metrics)
    finally:
        MetricsRegistry.default_enabled = old


def test_disabled_registry_leaves_golden_fig8_trace_unchanged():
    enabled_trace, enabled_count = _fig8_trace(True)
    disabled_trace, disabled_count = _fig8_trace(False)
    assert enabled_count > 50  # the world actually instrumented itself
    assert disabled_count == 0  # ... and a disabled one registered nothing
    assert "fault" in enabled_trace  # the failover actually happened
    assert enabled_trace == disabled_trace
    # The routing daemons churned the RIB throughout this failover, but
    # rib_change is a quiet kind: with no observer/tracker installed the
    # guarded call sites log nothing, so golden traces are identical to
    # pre-instrumentation runs.
    assert "rib_change" not in enabled_trace
    assert "bgp_mux" not in enabled_trace


def test_live_monitor_leaves_golden_fig8_trace_unchanged():
    """A LiveMonitor is passive at the trace layer: its periodic
    snapshot events read probes but never write trace records, so a
    monitored run replays the golden Fig-8 trace byte-identically —
    and with a disabled registry it registers zero ``live.*``
    instruments on top of zero everything else."""
    baseline_trace, _ = _fig8_trace(True)
    live_trace, live_count = _fig8_trace(False, live=True)
    assert live_count == 0  # disabled registry: no live.* instruments
    assert live_trace == baseline_trace


def test_fig8_world_registers_no_live_or_traffic_instruments():
    """The Fig-8 scenario installs neither the live layer nor a fluid
    traffic plane, so none of their instrument families may leak into
    the registry (the coverage gap PR 8 left for ``traffic.*``)."""
    old = MetricsRegistry.default_enabled
    MetricsRegistry.default_enabled = True
    try:
        vini, exp = build_abilene_iias(seed=8)
        exp.run(until=WARMUP)
        names = {row["name"] for row in vini.sim.metrics.collect()}
    finally:
        MetricsRegistry.default_enabled = old
    assert names, "expected an instrumented world"
    leaked = {n for n in names
              if n.startswith("live.") or n.startswith("traffic.")}
    assert leaked == set()


def test_traffic_plane_registers_nothing_when_registry_disabled():
    from repro.traffic import FluidTrafficPlane

    old = MetricsRegistry.default_enabled
    MetricsRegistry.default_enabled = False
    try:
        vini = build_deter(seed=5)
        FluidTrafficPlane(vini)
        assert len(vini.sim.metrics) == 0
    finally:
        MetricsRegistry.default_enabled = old


# ----------------------------------------------------------------------
# Enabled metrics cost the hot loop nothing measurable
# ----------------------------------------------------------------------
def _best_events_per_sec(runs: int = 3, scale: float = 0.1) -> float:
    best = 0.0
    for _ in range(runs):
        result = run_engine_cell("wheel", seed=0, scale=scale)
        best = max(best, result["perf"]["events_per_sec"])
    return best


def test_enabled_metrics_within_ten_percent_of_disabled():
    """Engine instrumentation is pull-only (three ``fn=`` gauges over
    already-maintained integers), so the event loop runs the same code
    either way. Allow 10% for wall-clock noise, retrying to ride out a
    noisy machine."""
    old = MetricsRegistry.default_enabled
    try:
        for attempt in range(4):
            MetricsRegistry.default_enabled = False
            baseline = _best_events_per_sec()
            MetricsRegistry.default_enabled = True
            enabled = _best_events_per_sec()
            if enabled >= 0.90 * baseline:
                return
            time.sleep(0.2)  # noisy neighbor; settle and retry
        pytest.fail(
            f"metrics-on engine rate {enabled:,.0f} ev/s fell more than 10% "
            f"below metrics-off {baseline:,.0f} ev/s after 4 attempts"
        )
    finally:
        MetricsRegistry.default_enabled = old
