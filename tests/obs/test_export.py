"""Unit tests for repro.obs.export: JSONL/CSV exporters, series CSV,
commit detection, and the BenchTrajectory artifact."""

import json
import os

from repro.obs import (
    BenchTrajectory,
    MetricsRegistry,
    PeriodicSampler,
    detect_commit,
    export_csv,
    export_jsonl,
    export_series_csv,
    registry_csv,
    registry_jsonl,
)
from repro.sim import Simulator


def _populated_registry():
    reg = MetricsRegistry(enabled=True)
    reg.counter("pkts", node="b").inc(3)
    reg.counter("pkts", node="a").inc(1)
    reg.gauge("depth", node="a").set(2.5)
    h = reg.histogram("rtt", node="a")
    for v in (0.076, 0.093, 0.076):
        h.observe(v)
    return reg


def test_registry_jsonl_sorted_and_parseable():
    text = registry_jsonl(_populated_registry())
    lines = text.strip().split("\n")
    rows = [json.loads(line) for line in lines]
    names = [r["name"] for r in rows]
    assert names == sorted(names)
    (hist_row,) = [r for r in rows if r["type"] == "histogram"]
    assert hist_row["count"] == 3
    assert hist_row["min"] == 0.076


def test_registry_jsonl_extra_fields_and_empty():
    text = registry_jsonl(_populated_registry(), extra={"seed": 7})
    assert all(json.loads(line)["seed"] == 7 for line in text.strip().split("\n"))
    assert registry_jsonl(MetricsRegistry(enabled=True)) == ""


def test_jsonl_export_is_byte_deterministic(tmp_path):
    a = registry_jsonl(_populated_registry())
    b = registry_jsonl(_populated_registry())
    assert a == b
    path = export_jsonl(_populated_registry(), str(tmp_path / "m.jsonl"))
    with open(path) as handle:
        assert handle.read() == a


def test_registry_csv_shape(tmp_path):
    text = registry_csv(_populated_registry())
    lines = text.strip().split("\n")
    assert lines[0].startswith("name,labels,type,value,count,sum")
    assert len(lines) == 1 + 4  # header + 4 metrics
    assert "node=a" in text
    path = export_csv(_populated_registry(), str(tmp_path / "m.csv"))
    with open(path) as handle:
        assert handle.read() == text


def test_export_series_csv(tmp_path):
    sim = Simulator()
    counter = sim.metrics.counter("n")
    hist = sim.metrics.histogram("lat")
    sim.schedule_periodic(0.5, lambda: (counter.inc(), hist.observe(0.01)))
    sampler = PeriodicSampler(sim, 1.0)
    sampler.watch("n", metric=counter).watch("lat", metric=hist).start()
    sim.run(until=2.0)
    path = export_series_csv(sampler, str(tmp_path / "series.csv"))
    with open(path) as handle:
        lines = handle.read().strip().split("\n")
    assert lines[0] == "key,time,value,count,sum"
    n_rows = [line for line in lines if line.startswith("n,")]
    lat_rows = [line for line in lines if line.startswith("lat,")]
    assert len(n_rows) == len(lat_rows) == 3  # t = 0, 1, 2
    # Histogram rows carry (count, sum); scalar rows carry value. The
    # t=2.0 snapshot precedes the same-timestamp workload event, so it
    # sees the 3 increments at t = 0.5, 1.0, 1.5.
    assert lat_rows[-1].split(",")[3] == "3"
    assert n_rows[-1].split(",")[2] == "3"


def test_detect_commit_reads_head(tmp_path):
    git = tmp_path / "repo" / ".git"
    os.makedirs(git / "refs" / "heads")
    (git / "HEAD").write_text("ref: refs/heads/main\n")
    (git / "refs" / "heads" / "main").write_text("a" * 40 + "\n")
    nested = tmp_path / "repo" / "sub" / "dir"
    os.makedirs(nested)
    assert detect_commit(str(nested)) == "a" * 12
    # Detached HEAD.
    (git / "HEAD").write_text("b" * 40 + "\n")
    assert detect_commit(str(nested)) == "b" * 12
    # Packed refs.
    (git / "HEAD").write_text("ref: refs/heads/packed\n")
    (git / "packed-refs").write_text("# pack-refs\n" + "c" * 40 + " refs/heads/packed\n")
    assert detect_commit(str(nested)) == "c" * 12
    assert detect_commit(str(tmp_path)) is None  # not a repo


def test_detect_commit_on_this_repo():
    commit = detect_commit(os.path.dirname(__file__))
    assert commit is not None and len(commit) == 12


def test_bench_trajectory_round_trip(tmp_path):
    trajectory = BenchTrajectory(name="t", results_dir=str(tmp_path))
    assert trajectory.rows() == []
    row1 = trajectory.append({"events_per_sec": 1.5e6}, commit="abc123",
                             timestamp="2026-08-06T00:00:00Z")
    trajectory.append({"events_per_sec": 1.6e6}, commit="def456",
                      timestamp="2026-08-06T01:00:00Z")
    rows = trajectory.rows()
    assert [r["commit"] for r in rows] == ["abc123", "def456"]
    assert rows[0] == row1
    # Appending never rewrites earlier lines.
    with open(trajectory.path) as handle:
        assert len(handle.read().strip().split("\n")) == 2


def test_bench_trajectory_stamps_commit_and_time(tmp_path):
    trajectory = BenchTrajectory(name="auto", results_dir=str(tmp_path))
    row = trajectory.append({"x": 1})
    assert "commit" in row and "timestamp" in row
    assert row["timestamp"].endswith("Z")


def test_histogram_buckets_in_jsonl_and_csv():
    reg = MetricsRegistry(enabled=True)
    h = reg.histogram("rtt", bounds=(0.01, 0.05, 0.1))
    for v in (0.005, 0.02, 0.02, 0.2):
        h.observe(v)
    # Cumulative (Prometheus "le") semantics, +Inf carries the total.
    assert h.cumulative_buckets() == [
        [0.01, 1], [0.05, 3], [0.1, 3], ["+Inf", 4]]
    (row,) = [json.loads(line) for line in
              registry_jsonl(reg).strip().split("\n")]
    assert row["buckets"] == [[0.01, 1], [0.05, 3], [0.1, 3], ["+Inf", 4]]
    text = registry_csv(reg)
    header, data = text.strip().split("\n")
    assert header.endswith(",buckets")
    assert data.endswith(",0.01:1;0.05:3;0.1:3;+Inf:4")


def test_bucket_csv_elides_leading_zero_buckets():
    reg = MetricsRegistry(enabled=True)
    reg.histogram("empty", bounds=(0.01, 0.1))
    text = registry_csv(reg)
    data = text.strip().split("\n")[1]
    # All-zero buckets collapse to just the +Inf total...
    assert data.endswith(",+Inf:0")
    # ...while counters/gauges leave the column blank entirely.
    reg.counter("c").inc()
    counter_row = [line for line in registry_csv(reg).strip().split("\n")
                   if line.startswith("c,")][0]
    assert counter_row.endswith(",")
