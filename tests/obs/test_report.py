"""ExperimentReport: determinism, structure, and the report CLI."""

import json

import pytest

from repro.obs.report import (
    ExperimentReport,
    build_report,
    main,
    run_fig8_report,
)
from repro.sim import Simulator

#: Shortened Fig-8 schedule so two full report runs stay test-sized.
SHORT = dict(seed=8, warmup=20.0, fail_at=5.0, fail_duration=12.0,
             end_at=30.0, interval=0.25)


def _short_report() -> ExperimentReport:
    # The ICMP ident counter is per-simulator, so an in-process rerun
    # matches what two fresh same-seed processes produce.
    return run_fig8_report(**SHORT)


@pytest.fixture(scope="module")
def fig8_report():
    return _short_report()


# ----------------------------------------------------------------------
# Determinism: same seed => byte-identical artifacts
# ----------------------------------------------------------------------
def test_same_seed_report_byte_identical(fig8_report):
    again = _short_report()
    assert fig8_report.to_json() == again.to_json()
    assert fig8_report.to_markdown() == again.to_markdown()


def test_json_is_sorted_and_round_trips(fig8_report):
    text = fig8_report.to_json()
    data = json.loads(text)
    assert json.dumps(data, indent=2, sort_keys=True) + "\n" == text
    assert data["meta"]["generator"] == "repro.obs.report"
    # No wall-clock contamination anywhere in the artifact.
    assert "timestamp" not in text


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------
def test_report_contains_every_section(fig8_report):
    md = fig8_report.to_markdown()
    for heading in (
        "# Experiment report — fig8",
        "## Run",
        "## Fault timeline",
        "## Convergence episodes",
        "### Path washington->seattle",
        "## Routing timelines",
        "### Adjacency transitions",
        "### RIB churn (changes by router and op)",
        "## Metrics snapshot",
        "## Sampler series",
        "## Flight recorder",
    ):
        assert heading in md, heading
    data = fig8_report.data
    assert [f["action"] for f in data["faults"]] == [
        "fail_link", "recover_link"
    ]
    episodes = data["convergence"]["episodes"]
    assert len(episodes) == 2
    assert episodes[0]["trigger"] == "fig8:fail_link fail denver=kansascity"
    assert episodes[0]["changes"] > 0
    # Detection on the shortened schedule still reflects the 10 s dead
    # interval, as in the full Fig-8 run.
    assert 4.0 < episodes[0]["detection_s"] < 12.0
    windows = data["convergence"]["paths"]["washington->seattle"]
    assert any(w["status"] == "blackhole" for w in windows)
    assert data["routing"]["rib_changes"]
    assert data["flights"]["started"] > 0
    assert data["samplers"]["fig8"]["series"]


def test_bare_report_omits_optional_sections():
    sim = Simulator(seed=1)
    sim.run(until=0.5)
    report = build_report(sim, name="bare")
    assert set(report.data) == {"meta", "faults", "metrics"}
    md = report.to_markdown()
    assert "No faults fired." in md
    assert "## Convergence episodes" not in md
    assert "## Flight recorder" not in md
    assert report.data["meta"]["sim_time"] == 0.5


def test_write_emits_markdown_and_json(tmp_path, fig8_report):
    base = str(tmp_path / "reports" / "fig8")
    md_path, json_path = fig8_report.write(base)
    assert md_path == base + ".md" and json_path == base + ".json"
    with open(md_path) as handle:
        assert handle.read() == fig8_report.to_markdown()
    with open(json_path) as handle:
        assert json.load(handle)["meta"]["name"] == "fig8"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_report_cli_main(tmp_path, capsys):
    base = str(tmp_path / "cli_report")
    code = main(["--warmup", "12", "--end", "18", "--interval", "0.5",
                 "--out", base])
    assert code == 0
    out = capsys.readouterr().out
    assert "episode fig8:fail_link fail denver=kansascity" in out
    assert f"wrote {base}.md and {base}.json" in out
    with open(base + ".json") as handle:
        data = json.load(handle)
    assert data["meta"]["seed"] == 8
