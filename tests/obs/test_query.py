"""Tests for the cross-run analysis engine: lazy tables, the
first-divergence diff, the causal explain chain, and the CLI.

Three Fig-8 archives are built once per module: two with the same seed
(the byte-identical pair every determinism assertion leans on) and one
with a single trace record's timestamp nudged by 1 ms — the controlled
perturbation the diff engine must localize exactly.
"""

import json
import os
import tracemalloc

import pytest

from repro.obs.query import (
    ArchiveReader,
    Table,
    diff_archives,
    diff_tables,
    explain_archive,
    flatten,
    main,
    nudge_spill,
    open_artifact,
    read_live_feed,
    read_sampler_csv,
    run_fig8_archive,
    sniff_kind,
)
from repro.sim import Simulator

NUDGE_INDEX = 137
NUDGE_DT = 1e-3
END_AT = 30.0


@pytest.fixture(scope="module")
def archives(tmp_path_factory):
    base = tmp_path_factory.mktemp("fig8-archives")
    a = run_fig8_archive(str(base / "a"), seed=8, end_at=END_AT)
    b = run_fig8_archive(str(base / "b"), seed=8, end_at=END_AT)
    c = run_fig8_archive(str(base / "c"), seed=8, end_at=END_AT,
                         nudge_index=NUDGE_INDEX, nudge_dt=NUDGE_DT)
    return {"a": os.path.dirname(a), "b": os.path.dirname(b),
            "c": os.path.dirname(c)}


# ----------------------------------------------------------------------
# Same-seed runs: byte-identical archives, zero divergences
# ----------------------------------------------------------------------
def test_same_seed_archives_have_zero_divergences(archives):
    report = diff_archives(archives["a"], archives["b"])
    assert report["divergences"] == []
    assert report["only_a"] == report["only_b"] == []
    assert report["meta_diffs"] == {}
    assert set(report["identical"]) == {
        "flights.jsonl", "live.jsonl", "report.json", "report.md",
        "series.csv", "trace.spill",
    }


def test_same_seed_artifact_hashes_agree_in_manifest(archives):
    arts_a = ArchiveReader(archives["a"]).artifacts
    arts_b = ArchiveReader(archives["b"]).artifacts
    assert {n: e["sha256"] for n, e in arts_a.items()} \
        == {n: e["sha256"] for n, e in arts_b.items()}


# ----------------------------------------------------------------------
# The nudged run: exactly one divergence, localized exactly
# ----------------------------------------------------------------------
def test_nudge_is_localized_to_exact_index_and_field(archives):
    report = diff_archives(archives["a"], archives["c"])
    assert len(report["divergences"]) == 1
    d = report["divergences"][0]
    assert d["artifact"] == "trace.spill"
    assert d["index"] == NUDGE_INDEX
    assert d["field"] == "t"
    assert d["fields"] == ["t"]
    assert d["b"] == pytest.approx(d["a"] + NUDGE_DT)
    assert isinstance(d["time"], (list, tuple))  # times differ, both kept
    assert d["kind"]  # the record's kind rides along
    # Every other artifact is untouched by the in-place nudge.
    assert set(report["identical"]) == {
        "flights.jsonl", "live.jsonl", "report.json", "report.md",
        "series.csv",
    }


def test_hash_only_diff_flags_without_row_localization(archives):
    report = diff_archives(archives["a"], archives["c"], hash_only=True)
    assert len(report["divergences"]) == 1
    d = report["divergences"][0]
    assert d["artifact"] == "trace.spill"
    assert d["field"] == "<sha256>"
    assert d["index"] == -1


def test_diff_tables_reports_record_count_mismatch():
    rows = [{"t": 0.0, "kind": "x", "n": 1}, {"t": 1.0, "kind": "x", "n": 2}]
    divs = diff_tables(rows, rows[:1], artifact="short")
    assert len(divs) == 1
    assert divs[0].field == "<record-count>"
    assert divs[0].index == 1
    assert divs[0].b == "<absent>"


def test_nudge_spill_rejects_out_of_range_index(archives, tmp_path):
    spill = ArchiveReader(archives["a"]).path("trace.spill")
    copy = tmp_path / "copy.spill"
    copy.write_bytes(open(spill, "rb").read())
    with pytest.raises(IndexError, match="records"):
        nudge_spill(str(copy), 10**6, 1.0)


# ----------------------------------------------------------------------
# Memory ceiling: stream a spill far larger than peak traced memory
# ----------------------------------------------------------------------
def test_query_streams_spill_over_10x_larger_than_peak_memory(tmp_path):
    sim = Simulator()
    path = str(tmp_path / "big.spill")
    total = 0
    for chunk in range(100):
        for i in range(2000):
            sim.trace.log("pkt", node=f"n{i % 7}", uid=total, rtt=0.5)
            total += 1
        sim.trace.spill_to(path)  # append-safe chunks keep build RAM flat
    size = os.path.getsize(path)

    table = open_artifact(path).where(node="n3")
    tracemalloc.start()
    count = 0
    last_uid = -1
    for row in table:
        count += 1
        assert row["uid"] > last_uid
        last_uid = row["uid"]
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert count == 100 * sum(1 for i in range(2000) if i % 7 == 3)
    # The whole file streamed through, yet peak memory stayed an order
    # of magnitude under the file size: nothing was materialized.
    assert size > 10 * peak, (size, peak)


# ----------------------------------------------------------------------
# Table combinators
# ----------------------------------------------------------------------
def _rows():
    return [
        {"t": 0.0, "kind": "ping", "node": "a", "rtt": 10.0},
        {"t": 1.0, "kind": "ping", "node": "b", "rtt": 30.0},
        {"t": 2.5, "kind": "pong", "node": "a", "rtt": 20.0},
        {"t": None, "kind": "meta", "node": None, "rtt": None},
    ]


def test_table_is_lazy_and_reiterable():
    pulls = []

    def source():
        pulls.append(1)
        return iter(_rows())

    table = Table(source).where(kind="ping").select("node", "rtt")
    assert pulls == []  # combinators read nothing
    assert list(table) == [{"node": "a", "rtt": 10.0},
                           {"node": "b", "rtt": 30.0}]
    assert list(table) == list(table)  # re-iterable, fresh pull each time
    assert len(pulls) >= 3


def test_table_span_window_head_and_agg():
    table = Table(lambda: iter(_rows()))
    assert [r["t"] for r in table.span(1.0, 3.0)] == [1.0, 2.5]
    assert [r["t"] for r in table.span()] == [0.0, 1.0, 2.5, None]
    assert [r["bucket"] for r in table.window(2.0)] == [0.0, 0.0, 2.0, None]
    assert len(list(table.head(2))) == 2
    with pytest.raises(ValueError):
        table.window(0)

    out = table.where(kind="ping").agg(
        [("count", None), ("mean", "rtt"), ("max", "rtt")])
    assert out == [{"count": 2, "mean(rtt)": 20.0, "max(rtt)": 30.0}]
    grouped = table.agg([("count", None)], by=("node",))
    # Groups sort by repr of the key: quoted strings before None.
    assert grouped == [
        {"node": "a", "count": 2},
        {"node": "b", "count": 1},
        {"node": None, "count": 1},
    ]


def test_flatten_dots_nested_dicts():
    assert flatten({"a": {"b": 1, "c": {"d": 2}}, "e": [3]}) \
        == {"a.b": 1, "a.c.d": 2, "e": [3]}


# ----------------------------------------------------------------------
# Readers + pushdown over the real archive
# ----------------------------------------------------------------------
def test_archive_reader_names_and_kinds(archives):
    reader = ArchiveReader(archives["a"])
    assert reader.names("trace_spill") == ["trace.spill"]
    assert reader.names("live_feed") == ["live.jsonl"]
    assert reader.meta["seed"] == 8
    assert len(reader.meta["config_signature"]) == 16


def test_spill_pushdown_equals_post_hoc_filtering(archives):
    reader = ArchiveReader(archives["a"])
    pushed = list(reader.table("trace.spill", kinds="rib_change",
                               t0=45.0, t1=60.0))
    plain = list(reader.table("trace.spill").where(kind="rib_change")
                 .span(45.0, 60.0))
    assert pushed == plain and pushed


def test_live_feed_and_sampler_readers(archives):
    reader = ArchiveReader(archives["a"])
    feed = list(read_live_feed(reader.path("live.jsonl")))
    assert feed[0]["kind"] == "header"
    assert feed[0]["schema"] == "repro.live/1"
    snapshots = [r for r in feed if r["kind"] == "snapshot"]
    assert snapshots and all("t" in r for r in snapshots)

    series = list(read_sampler_csv(reader.path("series.csv")))
    assert {r["key"] for r in series} == {"rtt"}
    assert all(isinstance(r["t"], float) for r in series)

    flights = list(reader.table("flights.jsonl", kinds="flight"))
    assert flights and all(r["kind"] == "flight" for r in flights)
    dropped = [r for r in flights if str(r["status"]).startswith("dropped")]
    assert dropped  # the failover drops probes into the blackhole


def test_sniff_kind_recognizes_every_fixture_artifact(archives):
    reader = ArchiveReader(archives["a"])
    for name, want in (
        ("trace.spill", "trace_spill"),
        ("live.jsonl", "live_feed"),
        ("series.csv", "sampler_csv"),
        ("flights.jsonl", "flight_jsonl"),
        ("report.json", "json"),
    ):
        assert sniff_kind(reader.path(name)) == want


# ----------------------------------------------------------------------
# Explain: the causal chain
# ----------------------------------------------------------------------
def test_explain_stitches_fault_episode_blackhole_flights(archives):
    doc = explain_archive(archives["a"])
    assert doc["faults"] == 1  # the restore is a plan action, one fault
    assert doc["chain"], "no causal chain built"
    link = doc["chain"][0]
    assert link["fault"]["action"] == "fail_link"
    episode = link["episode"]
    assert episode["detection_s"] > 0
    assert episode["convergence_s"] >= episode["detection_s"]
    assert episode["routers"] > 0
    assert link["blackholes"] and \
        link["blackholes"][0]["pair"] == "washington->seattle"
    assert link["flights"]["dropped"] > 0
    assert link["flights"]["overlapping"] >= link["flights"]["dropped"]


def test_explain_at_anchors_to_the_containing_episode(archives):
    doc = explain_archive(archives["a"], at=52.0)  # inside the episode
    assert len(doc["chain"]) == 1
    assert doc["at"] == 52.0
    early = explain_archive(archives["a"], at=1.0)  # before any fault
    assert len(early["chain"]) == 1  # falls back to the first link


# ----------------------------------------------------------------------
# CLI: exit codes and byte-identical output
# ----------------------------------------------------------------------
def _capture(capsys, argv):
    code = main(argv)
    return code, capsys.readouterr().out


def test_cli_diff_assert_gates_on_divergence(archives, capsys):
    code, out = _capture(
        capsys, ["diff", archives["a"], archives["b"], "--assert"])
    assert code == 0
    assert json.loads(out)["divergences"] == []
    code, out = _capture(
        capsys, ["diff", archives["a"], archives["c"], "--assert"])
    assert code == 1
    assert json.loads(out)["divergences"][0]["index"] == NUDGE_INDEX


def test_cli_q_output_is_byte_identical_across_same_seed_runs(
        archives, capsys):
    argv = ["q", None, "trace.spill", "--kind", "rib_change",
            "--t0", "45", "--t1", "60", "--cols", "router,dest"]
    outputs = []
    for key in ("a", "b"):
        argv[1] = archives[key]
        code, out = _capture(capsys, argv)
        assert code == 0
        outputs.append(out)
    assert outputs[0] == outputs[1] and outputs[0]
    first = json.loads(outputs[0].splitlines()[0])
    assert set(first) <= {"router", "dest", "t", "kind"}


def test_cli_q_agg_and_where(archives, capsys):
    code, out = _capture(
        capsys, ["q", archives["a"], "series.csv",
                 "--agg", "count,max:count", "--by", "key"])
    assert code == 0
    row = json.loads(out.splitlines()[0])
    assert row["key"] == "rtt" and row["count"] > 0


def test_cli_diff_and_explain_are_deterministic(archives, capsys):
    diff_argv = ["diff", archives["a"], archives["b"]]
    _, first = _capture(capsys, diff_argv)
    _, second = _capture(capsys, diff_argv)
    assert first == second

    _, explain_a = _capture(capsys, ["explain", archives["a"]])
    _, explain_a2 = _capture(capsys, ["explain", archives["a"]])
    assert explain_a == explain_a2
    _, explain_b = _capture(capsys, ["explain", archives["b"]])
    doc_a, doc_b = json.loads(explain_a), json.loads(explain_b)
    doc_a.pop("path"), doc_b.pop("path")
    assert doc_a == doc_b  # identical chains, only the location differs


def test_cli_diff_explain_appends_chain_at_divergence(archives, capsys):
    code, out = _capture(
        capsys, ["diff", archives["a"], archives["c"], "--explain"])
    assert code == 0  # no --assert: advisory
    # Two JSON documents: the diff report, then the anchored chain.
    decoder = json.JSONDecoder()
    report, end = decoder.raw_decode(out)
    explanation, _ = decoder.raw_decode(out[end:].lstrip())
    assert report["divergences"][0]["index"] == NUDGE_INDEX
    assert explanation["at"] == report["divergences"][0]["time"][0]
    assert "chain" in explanation


def test_cli_ls_lists_artifacts(archives, capsys):
    code, out = _capture(capsys, ["ls", archives["a"]])
    assert code == 0
    for name in ("trace.spill", "live.jsonl", "series.csv",
                 "flights.jsonl", "report.json", "report.md"):
        assert name in out
    code, out = _capture(capsys, ["ls", archives["a"], "--json"])
    assert json.loads(out)["schema"] == "repro.archive/1"
