"""Unit tests for repro.obs.sampler: sim-clock periodic snapshots."""

import pytest

from repro.obs import PeriodicSampler
from repro.sim import Simulator


def _sim_with_counter():
    sim = Simulator()
    counter = sim.metrics.counter("ticks")
    sim.schedule_periodic(0.1, counter.inc)
    return sim, counter


def test_sampler_records_series_on_sim_clock():
    sim, counter = _sim_with_counter()
    sampler = PeriodicSampler(sim, 1.0).watch("ticks", metric=counter).start()
    sim.run(until=3.0)
    series = sampler.series("ticks")
    times = [t for t, _v in series]
    assert times == [0.0, 1.0, 2.0, 3.0]
    # 10 increments per second; the tick at t=k sees k*10 increments
    # (the periodic increment at the same timestamp is scheduled before
    # the sampler snapshot or after, deterministically by seq).
    values = [v for _t, v in series]
    assert values[0] == 0
    assert values[-1] >= 29


def test_sampler_delta_and_rate():
    sim, counter = _sim_with_counter()
    sampler = PeriodicSampler(sim, 1.0).watch("ticks", metric=counter).start()
    sim.run(until=4.0)
    d = sampler.delta("ticks", 1.0, 3.0)
    assert d == sampler.value_at("ticks", 3.0) - sampler.value_at("ticks", 1.0)
    assert sampler.rate("ticks", 1.0, 3.0) == pytest.approx(d / 2.0)
    with pytest.raises(ValueError):
        sampler.rate("ticks", 3.0, 1.0)


def test_sampler_histogram_windowed_mean():
    sim = Simulator()
    hist = sim.metrics.histogram("lat")
    # One observation of value t/10 at every t = 0.25, 0.5, ...
    state = {"t": 0.0}

    def observe():
        state["t"] += 0.25
        hist.observe(state["t"] / 10.0)

    sim.schedule_periodic(0.25, observe)
    sampler = PeriodicSampler(sim, 1.0).watch("lat", metric=hist).start()
    # A histogram nothing observes: its windows are empty.
    sampler.watch("quiet", metric=sim.metrics.histogram("quiet"))
    sim.run(until=4.0)
    # The sampler tick at t=k re-arms earlier than the workload event at
    # t=k, so a snapshot excludes same-timestamp observations: the
    # window (1.0, 3.0] holds the observations at t = 1.0 .. 2.75.
    expected = [t / 10.0 for t in (1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75)]
    dcount, dsum = sampler.delta("lat", 1.0, 3.0)
    assert dcount == len(expected)
    assert dsum == pytest.approx(sum(expected), rel=1e-12)
    got = sampler.windowed_mean("lat", 1.0, 3.0)
    assert got == pytest.approx(sum(expected) / len(expected), rel=1e-12)
    # Empty window reads 0.0, not NaN.
    assert sampler.windowed_mean("quiet", 1.0, 3.0) == 0.0


def test_sampler_watch_validation():
    sim = Simulator()
    sampler = PeriodicSampler(sim, 1.0)
    with pytest.raises(ValueError):
        sampler.watch("x")  # neither metric nor fn
    with pytest.raises(ValueError):
        sampler.watch("x", metric=sim.metrics.counter("c"), fn=lambda: 0)
    sampler.watch("x", fn=lambda: 1)
    with pytest.raises(ValueError):
        sampler.watch("x", fn=lambda: 2)  # duplicate key
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 0.0)


def test_sampler_value_at_before_first_snapshot_raises():
    sim = Simulator()
    sampler = PeriodicSampler(sim, 1.0).watch("x", fn=lambda: 1)
    sim.at(2.0, lambda: None)
    sim.run(until=2.0)
    sampler.start()  # immediate snapshot at t=2
    with pytest.raises(ValueError):
        sampler.value_at("x", 1.0)
    assert sampler.value_at("x", 2.0) == 1


def test_sampler_stop_takes_final_snapshot_and_restart_rejected():
    sim, counter = _sim_with_counter()
    sampler = PeriodicSampler(sim, 1.0).watch("ticks", metric=counter).start()
    with pytest.raises(RuntimeError):
        sampler.start()
    sim.run(until=2.5)
    sampler.stop(final=True)
    assert sampler.series("ticks")[-1][0] == 2.5
    before = len(sampler.series("ticks"))
    sim.run(until=5.0)
    assert len(sampler.series("ticks")) == before  # no ticks after stop


def test_sampler_does_not_perturb_event_order():
    """The same workload with and without a sampler produces the same
    trace — snapshots interleave, they do not reorder."""

    def run(with_sampler: bool):
        sim = Simulator(seed=3)
        counter = sim.metrics.counter("n")

        def work():
            counter.inc()
            sim.trace.log("work", n=counter.value)

        sim.schedule_periodic(0.3, work)
        if with_sampler:
            PeriodicSampler(sim, 1.0).watch("n", metric=counter).start()
        sim.run(until=5.0)
        return [(r.time, r.kind, sorted(r.fields.items())) for r in sim.trace.records]

    assert run(True) == run(False)


def test_sampler_tail_retention_caps_series():
    sim, counter = _sim_with_counter()
    sampler = PeriodicSampler(
        sim, 1.0, max_points=5, retention="tail"
    ).watch("ticks", metric=counter).start()
    sim.run(until=20.0)
    series = sampler.series("ticks")
    assert len(series) == 5
    # A sliding window: the newest snapshots survive.
    assert [t for t, _v in series] == [16.0, 17.0, 18.0, 19.0, 20.0]


def test_sampler_decimate_retention_keeps_coarse_history():
    sim, counter = _sim_with_counter()
    sampler = PeriodicSampler(
        sim, 1.0, max_points=10, retention="decimate", decimate=5
    ).watch("ticks", metric=counter).start()
    sim.run(until=40.0)
    series = sampler.series("ticks")
    times = [t for t, _v in series]
    # Bounded well under the un-trimmed 41 points...
    assert len(series) <= 12
    # ...but still anchored at the start and dense at the end.
    assert times[0] == 0.0
    assert times[-3:] == [38.0, 39.0, 40.0]
    assert times == sorted(times)


def test_sampler_retention_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 1.0, retention="ring")
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 1.0, max_points=0)
    with pytest.raises(ValueError):
        PeriodicSampler(sim, 1.0, decimate=1)
