"""RoutingObserver timelines and ConvergenceTracker analytics."""

import pytest

from repro.faults import FaultPlan, walk_overlay_path
from repro.obs import ConvergenceTracker, RoutingObserver
from repro.obs.routing import episodes_from_trace
from repro.sim import Simulator
from repro.topologies import build_ring

WARMUP = 10.0
FAIL_AT = 2.0
DURATION = 6.0
END_AT = 20.0


def _ring_world(seed=7):
    """A 4-node OSPF ring: n0--n1--n2--n3--n0, fast hello/dead timers
    so convergence fits in a short test run."""
    vini, exp = build_ring(4, seed=seed)
    exp.configure_ospf(hello_interval=1.0, dead_interval=3.0)
    return vini, exp


def _run_failover(seed=7, pairs=(("n0", "n2"),)):
    vini, exp = _ring_world(seed=seed)
    observer = RoutingObserver(vini.sim).install()
    tracker = ConvergenceTracker(exp).install()
    for src, dst in pairs:
        tracker.watch_path(src, dst)
    exp.start()
    exp.run(until=WARMUP)
    plan = FaultPlan("ring").fail_link(FAIL_AT, "n0", "n1",
                                       duration=DURATION)
    exp.apply_faults(plan, offset=WARMUP)
    vini.run(until=WARMUP + END_AT)
    return vini, exp, observer, tracker


# ----------------------------------------------------------------------
# RoutingObserver
# ----------------------------------------------------------------------
def test_observer_accumulates_control_plane_timelines():
    vini, exp, observer, tracker = _run_failover()
    assert observer.adjacency, "no adjacency transitions collected"
    states = {event["state"] for event in observer.adjacency}
    assert "Full" in states and "Down" in states
    assert observer.spf, "no SPF runs collected"
    assert observer.rib, "no RIB changes collected"
    # Timelines are in event order.
    times = [event["time"] for event in observer.rib]
    assert times == sorted(times)
    section = observer.as_dict()
    assert set(section) == {"adjacency", "spf_runs", "bgp_sessions",
                            "rib_changes"}
    assert len(section["rib_changes"]) == len(observer.rib)


def test_observer_install_enables_the_quiet_rib_kind():
    sim = Simulator(seed=1)
    assert not sim.trace.wants("rib_change")
    RoutingObserver(sim).install()
    assert sim.trace.wants("rib_change")


# ----------------------------------------------------------------------
# ConvergenceTracker: episodes
# ----------------------------------------------------------------------
def test_tracker_episodes_equal_offline_rederivation():
    vini, exp, observer, tracker = _run_failover()
    offline = episodes_from_trace(vini.sim.trace)
    assert [e.as_dict() for e in tracker.episodes] == [
        e.as_dict() for e in offline
    ]
    assert [e.trigger for e in tracker.episodes] == [
        "ring:fail_link fail n0=n1",
        "ring:recover_link recover n0=n1",
    ]


def test_episode_stitches_fault_to_rib_churn():
    vini, exp, observer, tracker = _run_failover()
    fail_ep = tracker.episodes[0]
    assert fail_ep.start == WARMUP + FAIL_AT
    assert fail_ep.changes > 0
    # Detection is dead-interval bound (3 s) plus flooding/SPF slack.
    assert 0.0 < fail_ep.detection_s <= 4.0
    assert fail_ep.detection_s <= fail_ep.convergence_s
    # Both endpoints of the failed link rerouted something.
    assert "n0" in fail_ep.routers and "n1" in fail_ep.routers
    for first, last, count in fail_ep.routers.values():
        assert fail_ep.first_change <= first <= last <= fail_ep.last_change
        assert count >= 1
    assert sum(c for _f, _l, c in fail_ep.routers.values()) == fail_ep.changes


# ----------------------------------------------------------------------
# ConvergenceTracker: path windows
# ----------------------------------------------------------------------
def test_blackhole_window_opens_at_the_fault_instant():
    vini, exp, observer, tracker = _run_failover(pairs=(("n0", "n2"),
                                                        ("n1", "n3")))
    for src, dst in (("n0", "n2"), ("n1", "n3")):
        windows = tracker.path_windows(src, dst)
        # Pre-start walk saw no routes, then OSPF delivered, then the
        # failure transient, then delivered again.
        assert windows[0]["status"] == "blackhole"
        assert windows[-1]["status"] == "delivered"
        assert windows[-1]["end"] == vini.sim.now
    # n0->n2's traffic crossed the failed link; its blackhole window
    # opens exactly when the vlink flips and closes at a reroute within
    # the episode's churn.
    fail_ep = tracker.episodes[0]
    holes = [w for w in tracker.blackhole_windows("n0", "n2")
             if w["start"] >= WARMUP]
    assert holes
    assert holes[0]["start"] == WARMUP + FAIL_AT
    assert holes[0]["end"] <= fail_ep.last_change + 1e-9


def test_unaffected_path_stays_delivered():
    vini, exp, observer, tracker = _run_failover(pairs=(("n2", "n3"),))
    # n2--n3 is a direct edge untouched by the n0--n1 failure.
    assert [w for w in tracker.blackhole_windows("n2", "n3")
            if w["start"] >= WARMUP] == []


def test_watch_path_validates_nodes_and_targets():
    vini, exp = _ring_world()
    tracker = ConvergenceTracker(exp)
    with pytest.raises(KeyError):
        tracker.watch_path("n0", "nope")
    bare = ConvergenceTracker(Simulator(seed=3))
    with pytest.raises(ValueError):
        bare.watch_path("a", "b")
    with pytest.raises(TypeError):
        ConvergenceTracker(42)


def test_tracker_on_bare_simulator_stitches_manual_records():
    sim = Simulator(seed=11)
    tracker = ConvergenceTracker(sim).install()
    trace = sim.trace
    trace.log("fault", plan="p", action="fail_link", label="fail x=y")
    trace.log("rib_change", router="r1", prefix="10.0.0.0/24", op="replace",
              protocol="ospf", nexthop="10.0.0.1")
    trace.log("rib_change", router="r2", prefix="10.0.0.0/24", op="replace",
              protocol="ospf", nexthop="10.0.0.2")
    assert len(tracker.episodes) == 1
    episode = tracker.episodes[0]
    assert episode.trigger == "p:fail_link fail x=y"
    assert episode.changes == 2
    assert episode.prefixes["10.0.0.0/24"][2] == 2
    assert tracker.as_dict()["paths"] == {}


# ----------------------------------------------------------------------
# walk_overlay_path statuses
# ----------------------------------------------------------------------
def test_walk_reports_delivered_and_blackhole():
    vini, exp = _ring_world()
    exp.start()
    exp.run(until=WARMUP)
    network = exp.network
    n0, n2 = network.nodes["n0"], network.nodes["n2"]
    status, path = walk_overlay_path(network, n0, n2)
    assert status == "delivered"
    assert path[0] == "n0" and path[-1] == "n2"
    assert len(path) == 3  # one intermediate hop on the ring
    # Cut both of n0's links: nothing can leave it.
    network.fail_link("n0", "n1")
    network.fail_link("n3", "n0")
    status, path = walk_overlay_path(network, n0, n2)
    assert status == "blackhole"
    assert path[0] == "n0"
