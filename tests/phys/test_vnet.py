"""Unit tests for VNET port reservation and preallocation."""

import pytest

from repro.net.packet import PROTO_TCP, PROTO_UDP
from repro.phys.node import PhysicalNode
from repro.phys.vnet import PortConflictError, VNet
from repro.phys.vserver import Slice
from repro.sim import Simulator


@pytest.fixture
def node():
    sim = Simulator()
    node = PhysicalNode(sim, "n")
    node.add_interface("eth0").configure("192.0.2.1", 24)
    return node


def test_reserve_and_release(node):
    entry = object()
    node.vnet.reserve(PROTO_UDP, 5000, entry)
    assert node.vnet.lookup(PROTO_UDP, 5000) is entry
    node.vnet.release(PROTO_UDP, 5000, entry)
    assert node.vnet.lookup(PROTO_UDP, 5000) is None


def test_release_wrong_entry_is_noop(node):
    entry, other = object(), object()
    node.vnet.reserve(PROTO_UDP, 5000, entry)
    node.vnet.release(PROTO_UDP, 5000, other)
    assert node.vnet.lookup(PROTO_UDP, 5000) is entry


def test_conflict_names_owning_slice(node):
    sliver = node.create_sliver(Slice("owner-slice"))
    proc = sliver.create_process("app")
    node.udp_socket(proc, port=5000)
    with pytest.raises(PortConflictError) as err:
        node.vnet.reserve(PROTO_UDP, 5000, object())
    assert "owner-slice" in str(err.value)


def test_proto_spaces_are_independent(node):
    node.vnet.reserve(PROTO_UDP, 5000, object())
    node.vnet.reserve(PROTO_TCP, 5000, object())  # no conflict


def test_invalid_port_rejected(node):
    with pytest.raises(ValueError):
        node.vnet.reserve(PROTO_UDP, 0, object())
    with pytest.raises(ValueError):
        node.vnet.reserve(PROTO_UDP, 70000, object())


def test_free_port_skips_reserved_and_preallocated(node):
    node.vnet.reserve(PROTO_UDP, 32768, object())
    preallocated = node.vnet.preallocate(PROTO_UDP, start=32769)
    assert preallocated == 32769
    assert node.vnet.free_port(PROTO_UDP) == 32770


def test_preallocate_is_monotone_per_node(node):
    first = node.vnet.preallocate(PROTO_UDP, start=33000)
    second = node.vnet.preallocate(PROTO_UDP, start=33000)
    assert first == 33000
    assert second == 33001


def test_preallocated_port_can_be_bound(node):
    sliver = node.create_sliver(Slice("s"))
    proc = sliver.create_process("app")
    port = node.vnet.preallocate(PROTO_UDP, start=33000)
    node.udp_socket(proc, port=port)  # bind succeeds


def test_ports_of_slice(node):
    sliver = node.create_sliver(Slice("mine"))
    proc = sliver.create_process("app")
    node.udp_socket(proc, port=5000)
    node.udp_socket(proc, port=5001)
    assert sorted(node.vnet.ports_of_slice("mine")) == [
        (PROTO_UDP, 5000),
        (PROTO_UDP, 5001),
    ]
    assert node.vnet.ports_of_slice("other") == []
