"""Unit tests for background CPU load generators."""

import pytest

from repro.phys.load import CPUHog
from repro.phys.node import PhysicalNode
from repro.phys.process import Process
from repro.sim import Simulator


def test_hog_consumes_full_cpu_when_alone():
    sim = Simulator(seed=1)
    node = PhysicalNode(sim, "n")
    hog = CPUHog(node, heavy_tail_prob=0.0).start()
    sim.run(until=5.0)
    assert hog.process.cpu_used == pytest.approx(5.0, rel=0.02)


def test_hogs_share_fairly():
    sim = Simulator(seed=2)
    node = PhysicalNode(sim, "n")
    hogs = [CPUHog(node, name=f"h{i}", heavy_tail_prob=0.0).start() for i in range(4)]
    sim.run(until=8.0)
    for hog in hogs:
        assert hog.process.cpu_used == pytest.approx(2.0, rel=0.1)


def test_hog_starves_default_share_victim():
    """The PlanetLab problem: a fair-share process waits behind hogs."""
    sim = Simulator(seed=3)
    node = PhysicalNode(sim, "n")
    node.cpu.interactive_threshold = 0.0  # the victim models busy Click
    for i in range(7):
        CPUHog(node, name=f"h{i}", heavy_tail_prob=0.0).start()
    victim = Process(node, "click")
    latencies = []

    def wake():
        start = sim.now
        victim.exec_after(0.0001, lambda: latencies.append(sim.now - start))
        sim.at(0.05, wake)

    sim.at(0.0, wake)
    sim.run(until=5.0)
    mean = sum(latencies) / len(latencies)
    assert mean > 0.001  # milliseconds of scheduling latency


def test_realtime_victim_not_starved():
    sim = Simulator(seed=3)
    node = PhysicalNode(sim, "n")
    for i in range(7):
        CPUHog(node, name=f"h{i}", heavy_tail_prob=0.0).start()
    victim = Process(node, "click", realtime=True)
    latencies = []

    def wake():
        start = sim.now
        victim.exec_after(0.0001, lambda: latencies.append(sim.now - start))
        sim.at(0.05, wake)

    sim.at(0.0, wake)
    sim.run(until=5.0)
    mean = sum(latencies) / len(latencies)
    assert mean < 0.0005


def test_duty_cycle_reduces_load():
    sim = Simulator(seed=4)
    node = PhysicalNode(sim, "n")
    hog = CPUHog(node, duty_cycle=0.3, heavy_tail_prob=0.0).start()
    sim.run(until=20.0)
    assert hog.process.cpu_used / 20.0 == pytest.approx(0.3, rel=0.25)


def test_stop_halts_consumption():
    sim = Simulator(seed=5)
    node = PhysicalNode(sim, "n")
    hog = CPUHog(node, heavy_tail_prob=0.0).start()
    sim.at(1.0, hog.stop)
    sim.run(until=5.0)
    assert hog.process.cpu_used < 1.1


def test_heavy_tail_produces_long_chunks():
    sim = Simulator(seed=6)
    node = PhysicalNode(sim, "n")
    hog = CPUHog(node, heavy_tail_prob=0.5, heavy_tail_max=0.06)
    chunks = {hog._chunk() for _ in range(200)}
    assert max(chunks) > 0.02
    assert min(chunks) == hog.quantum


def test_invalid_duty_cycle():
    sim = Simulator()
    node = PhysicalNode(sim, "n")
    with pytest.raises(ValueError):
        CPUHog(node, duty_cycle=0.0)
