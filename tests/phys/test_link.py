"""Unit tests for the physical link model."""

import pytest

from repro.net.packet import IPv4Header, OpaquePayload, Packet, PROTO_UDP
from repro.phys.link import Link
from repro.sim import Simulator


class FakeNode:
    def __init__(self, name):
        self.name = name


class FakeInterface:
    """Endpoint stub that records deliveries."""

    def __init__(self, name):
        self.node = FakeNode(name)
        self.received = []

    def receive(self, packet):
        self.received.append((packet, packet.uid))


def make_packet(size=1000):
    return Packet(
        headers=[IPv4Header("10.0.0.1", "10.0.0.2", PROTO_UDP)],
        payload=OpaquePayload(size - 20),
    )


def make_link(sim, bandwidth=8_000_000, delay=0.010, queue_bytes=4000):
    a, b = FakeInterface("a"), FakeInterface("b")
    link = Link(sim, bandwidth=bandwidth, delay=delay, queue_bytes=queue_bytes)
    link.attach(a)
    link.attach(b)
    return link, a, b


def test_delivery_after_tx_plus_propagation():
    sim = Simulator()
    link, a, b = make_link(sim)  # 8 Mb/s, 10 ms
    pkt = make_packet(1000)  # 8000 bits -> 1 ms serialization
    times = []
    sim.at(0.0, lambda: link.transmit(a, pkt))
    sim.trace.subscribe("x", lambda r: None)
    sim.run()
    assert len(b.received) == 1
    assert sim.now == pytest.approx(0.011)


def test_serialization_queues_back_to_back():
    sim = Simulator()
    link, a, b = make_link(sim, queue_bytes=100000)
    for _ in range(3):
        link.transmit(a, make_packet(1000))
    deliveries = []
    original = b.receive

    def recording(pkt):
        deliveries.append(sim.now)
        original(pkt)

    b.receive = recording
    sim.run()
    assert deliveries == [
        pytest.approx(0.011),
        pytest.approx(0.012),
        pytest.approx(0.013),
    ]


def test_queue_overflow_drops():
    sim = Simulator()
    # Queue holds 4000 bytes = 4 packets; 1 transmitting + 4 queued.
    link, a, b = make_link(sim)
    results = [link.transmit(a, make_packet(1000)) for _ in range(8)]
    assert results[:5] == [True] * 5
    assert results[5:] == [False] * 3
    sim.run()
    assert len(b.received) == 5
    assert link.stats()["drops"] == 3
    assert sim.trace.count("link_drop", reason="queue_overflow") == 3


def test_duplex_directions_independent():
    sim = Simulator()
    link, a, b = make_link(sim)
    link.transmit(a, make_packet(1000))
    link.transmit(b, make_packet(1000))
    sim.run()
    assert len(b.received) == 1
    assert len(a.received) == 1


def test_fail_drops_queued_and_in_flight():
    sim = Simulator()
    link, a, b = make_link(sim, queue_bytes=100000)
    for _ in range(3):
        link.transmit(a, make_packet(1000))
    # Fail at 5 ms: first packet is in flight, others queued.
    sim.at(0.005, link.fail)
    sim.run()
    assert b.received == []
    assert not link.up


def test_fail_accounts_every_dropped_packet():
    """The drop counter and the per-packet ``link_drop`` trace records
    must agree after ``fail()`` flushes queued and in-flight packets."""
    sim = Simulator()
    link, a, b = make_link(sim, queue_bytes=100000)
    packets = [make_packet(1000) for _ in range(4)]
    for pkt in packets:
        link.transmit(a, pkt)
    sim.at(0.0005, link.fail)  # first packet mid-serialization, 3 queued
    sim.run()
    assert link.stats()["drops"] == 4
    records = list(sim.trace.select("link_drop", reason="link_failed"))
    assert len(records) == 4
    assert sorted(r["uid"] for r in records) == sorted(
        pkt.uid for pkt in packets
    )
    assert all(r["link"] == link.name for r in records)


def test_offered_delivered_conservation():
    """offered == delivered + drops + queued + in-flight, always."""
    sim = Simulator()
    link, a, b = make_link(sim)  # queue holds 4: 5 accepted, 3 overflow
    for _ in range(8):
        link.transmit(a, make_packet(1000))
    stats = link.stats()
    in_transit = sum(
        len(c.queue) + len(c.in_flight) for c in link._channels.values()
    )
    assert stats["offered"] == 8
    assert stats["offered"] == (
        stats["delivered"] + stats["drops"] + in_transit
    )
    sim.at(0.0025, link.fail)  # strand the rest mid-delivery
    sim.run()
    stats = link.stats()
    assert stats["offered"] == stats["delivered"] + stats["drops"]
    assert stats["drops"] == sim.trace.count("link_drop", link=link.name)


def test_down_link_rejects_sends():
    sim = Simulator()
    link, a, b = make_link(sim)
    link.fail()
    assert link.transmit(a, make_packet()) is False
    sim.run()
    assert b.received == []


def test_recover_restores_service():
    sim = Simulator()
    link, a, b = make_link(sim)
    link.fail()
    link.recover()
    assert link.up
    link.transmit(a, make_packet(1000))
    sim.run()
    assert len(b.received) == 1


def test_observers_notified_with_state():
    sim = Simulator()
    link, a, b = make_link(sim)
    events = []
    link.observe(lambda lk, up: events.append((lk.name, up)))
    link.fail()
    link.fail()  # idempotent: no duplicate notification
    link.recover()
    assert events == [("a--b", False), ("a--b", True)]


def test_state_changes_traced():
    sim = Simulator()
    link, a, b = make_link(sim)
    link.fail()
    link.recover()
    states = [r["up"] for r in sim.trace.select("link_state")]
    assert states == [False, True]


def test_stats_count_tx():
    sim = Simulator()
    link, a, b = make_link(sim)
    link.transmit(a, make_packet(1000))
    sim.run()
    stats = link.stats()
    assert stats["tx_packets"] == 1
    assert stats["tx_bytes"] == 1000


def test_other_end():
    sim = Simulator()
    link, a, b = make_link(sim)
    assert link.other_end(a) is b
    assert link.other_end(b) is a
    with pytest.raises(ValueError):
        link.other_end(FakeInterface("c"))


def test_attach_limit():
    sim = Simulator()
    link, a, b = make_link(sim)
    with pytest.raises(ValueError):
        link.attach(FakeInterface("c"))


def test_parameter_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Link(sim, bandwidth=0)
    with pytest.raises(ValueError):
        Link(sim, delay=-1)


def test_bandwidth_reconfiguration_invalidates_tx_memo():
    # The per-channel serialization-time memo is keyed only by wire
    # length; the bandwidth setter must clear it so a reconfigured
    # link never serves times computed for the old rate.
    sim = Simulator()
    link, a, b = make_link(sim, bandwidth=8_000_000, delay=0.0)
    sim.at(0.0, lambda: link.transmit(a, make_packet(1000)))
    sim.run()
    assert sim.now == pytest.approx(0.001)  # 8000 bits at 8 Mb/s
    link.bandwidth = 16_000_000
    start = sim.now
    sim.at(0.0, lambda: link.transmit(a, make_packet(1000)))
    sim.run()
    assert sim.now - start == pytest.approx(0.0005)
    with pytest.raises(ValueError):
        link.bandwidth = 0
