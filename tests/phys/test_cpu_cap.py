"""Tests for the non-work-conserving CPU cap (Section 6.2)."""

import pytest

from repro.phys.node import PhysicalNode
from repro.phys.process import Process
from repro.sim import Simulator


def make_node():
    sim = Simulator(seed=3)
    return sim, PhysicalNode(sim, "n")


def busy_loop(proc, chunk=0.001):
    def refill():
        proc.exec_after(chunk, refill)

    refill()


def test_capped_process_limited_even_on_idle_cpu():
    """Non-work-conserving: the cap binds with nothing else running."""
    sim, node = make_node()
    capped = Process(node, "capped", cpu_cap=0.25)
    busy_loop(capped)
    sim.run(until=10.0)
    assert capped.cpu_used / 10.0 == pytest.approx(0.25, rel=0.15)


def test_uncapped_process_uses_idle_cpu():
    sim, node = make_node()
    free = Process(node, "free")
    busy_loop(free)
    sim.run(until=5.0)
    assert free.cpu_used / 5.0 > 0.95


def test_cap_gives_repeatable_allocation_with_and_without_load():
    """The Section 6.2 rationale: same allocation, neither less nor more,
    regardless of competing load — repeatable experiments."""
    allocations = []
    for competitors in (0, 6):
        sim, node = make_node()
        capped = Process(node, "exp", cpu_cap=0.2, reservation=0.2)
        busy_loop(capped)
        for index in range(competitors):
            busy_loop(Process(node, f"other{index}"))
        sim.run(until=10.0)
        allocations.append(capped.cpu_used / 10.0)
    idle_alloc, loaded_alloc = allocations
    assert idle_alloc == pytest.approx(0.2, rel=0.15)
    assert loaded_alloc == pytest.approx(idle_alloc, rel=0.15)


def test_others_get_remaining_cpu():
    sim, node = make_node()
    capped = Process(node, "capped", cpu_cap=0.3)
    other = Process(node, "other")
    busy_loop(capped)
    busy_loop(other)
    sim.run(until=10.0)
    assert other.cpu_used / 10.0 > 0.6


def test_invalid_cap_rejected():
    sim, node = make_node()
    with pytest.raises(ValueError):
        Process(node, "bad", cpu_cap=0.0)
    with pytest.raises(ValueError):
        Process(node, "bad", cpu_cap=1.5)


def test_slice_cap_inherited_by_processes():
    from repro.phys.vserver import Slice

    sim, node = make_node()
    sliver = node.create_sliver(Slice("exp", cpu_cap=0.4))
    proc = sliver.create_process("worker")
    assert proc.cpu_cap == 0.4
