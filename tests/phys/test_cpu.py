"""Unit tests for the CPU scheduler: fair share, reservations, RT."""

import pytest

from repro.phys.node import PhysicalNode
from repro.phys.process import Process
from repro.sim import Simulator


def make_node(speed=1.0):
    sim = Simulator()
    node = PhysicalNode(sim, "n0", cpu_speed=speed)
    return sim, node


def test_work_executes_after_cost():
    sim, node = make_node()
    proc = Process(node, "p")
    done = []
    proc.exec_after(0.010, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.010)]


def test_speed_scales_execution_time():
    sim, node = make_node(speed=2.0)
    proc = Process(node, "p")
    done = []
    proc.exec_after(0.010, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.005)]


def test_serial_execution_single_cpu():
    sim, node = make_node()
    a = Process(node, "a")
    b = Process(node, "b")
    done = []
    a.exec_after(0.010, lambda: done.append(("a", sim.now)))
    b.exec_after(0.010, lambda: done.append(("b", sim.now)))
    sim.run()
    # Two 10 ms items on one CPU finish at 10 and 20 ms.
    assert done[0] == ("a", pytest.approx(0.010))
    assert done[1] == ("b", pytest.approx(0.020))


def test_fair_share_is_proportional():
    sim, node = make_node()
    heavy = Process(node, "heavy", share=3.0)
    light = Process(node, "light", share=1.0)

    def refill(proc):
        proc.exec_after(0.001, refill, proc)

    refill(heavy)
    refill(light)
    sim.run(until=10.0)
    ratio = heavy.cpu_used / light.cpu_used
    assert 2.5 < ratio < 3.5


def test_equal_shares_split_evenly():
    sim, node = make_node()
    procs = [Process(node, f"p{i}") for i in range(4)]

    def refill(proc):
        proc.exec_after(0.001, refill, proc)

    for proc in procs:
        refill(proc)
    sim.run(until=8.0)
    usages = [p.cpu_used for p in procs]
    for usage in usages:
        assert usage == pytest.approx(2.0, rel=0.1)


def test_reservation_gets_minimum_under_contention():
    sim, node = make_node()
    reserved = Process(node, "rsv", reservation=0.25)
    hogs = [Process(node, f"hog{i}") for i in range(7)]

    def refill(proc):
        proc.exec_after(0.001, refill, proc)

    refill(reserved)
    for hog in hogs:
        refill(hog)
    sim.run(until=10.0)
    # Fair share would give 1/8 = 12.5%; the reservation guarantees 25%.
    assert reserved.cpu_used / 10.0 >= 0.22


def test_reservation_does_not_starve_others():
    sim, node = make_node()
    reserved = Process(node, "rsv", reservation=0.25)
    other = Process(node, "other")

    def refill(proc):
        proc.exec_after(0.001, refill, proc)

    refill(reserved)
    refill(other)
    sim.run(until=10.0)
    # With only two runnable processes the non-reserved one still gets
    # a meaningful allocation (reservation is a floor, not ownership).
    assert other.cpu_used / 10.0 > 0.3


def test_realtime_preempts_running_work():
    sim, node = make_node()
    node.cpu.max_nonpreempt = 0.0  # deterministic preemption timing
    slow = Process(node, "slow")
    rt = Process(node, "rt", realtime=True)
    done = []
    slow.exec_after(0.100, lambda: done.append(("slow", sim.now)))
    # RT work arrives 10ms into slow's 100ms chunk.
    sim.at(0.010, lambda: rt.exec_after(0.001, lambda: done.append(("rt", sim.now))))
    sim.run()
    assert done[0] == ("rt", pytest.approx(0.011))
    # Slow's remainder resumes and finishes at its original cost + 1ms.
    assert done[1] == ("slow", pytest.approx(0.101))


def test_preemption_waits_for_nonpreemptible_section():
    """An RT wakeup waits up to max_nonpreempt for the running chunk."""
    sim, node = make_node()
    node.cpu.max_nonpreempt = 0.0003
    slow = Process(node, "slow")
    rt = Process(node, "rt", realtime=True)
    done = []
    slow.exec_after(0.100, lambda: done.append(("slow", sim.now)))
    sim.at(0.010, lambda: rt.exec_after(0.001, lambda: done.append(("rt", sim.now))))
    sim.run()
    assert done[0][0] == "rt"
    # RT ran after a bounded non-preemptible delay, not instantly.
    assert 0.011 <= done[0][1] <= 0.011 + 0.0003


def test_realtime_does_not_preempt_realtime():
    sim, node = make_node()
    rt1 = Process(node, "rt1", realtime=True)
    rt2 = Process(node, "rt2", realtime=True)
    done = []
    rt1.exec_after(0.010, lambda: done.append(("rt1", sim.now)))
    sim.at(0.001, lambda: rt2.exec_after(0.001, lambda: done.append(("rt2", sim.now))))
    sim.run()
    assert done[0] == ("rt1", pytest.approx(0.010))
    assert done[1] == ("rt2", pytest.approx(0.011))


def test_realtime_wakeup_latency_is_zero_when_idle():
    sim, node = make_node()
    rt = Process(node, "rt", realtime=True)
    done = []
    sim.at(5.0, lambda: rt.exec_after(0.0, lambda: done.append(sim.now)))
    sim.run()
    assert done == [pytest.approx(5.0)]


def test_default_share_wakeup_waits_behind_quantum():
    sim, node = make_node()
    node.cpu.interactive_threshold = 0.0  # model a busy (non-interactive) waker
    hog = Process(node, "hog")
    click = Process(node, "click")
    done = []

    def refill():
        hog.exec_after(0.005, refill)

    refill()
    # Click wakes mid-quantum; without RT it waits for the quantum end.
    sim.at(0.0025, lambda: click.exec_after(0.0001, lambda: done.append(sim.now)))
    sim.run(until=0.1)
    assert done[0] == pytest.approx(0.0051, abs=1e-4)


def test_cancelled_work_item_not_executed():
    sim, node = make_node()
    proc = Process(node, "p")
    done = []
    proc.exec_after(0.001, lambda: done.append("first"))
    item = proc.exec_after(0.001, lambda: done.append("second"))
    item.cancelled = True
    sim.run()
    assert done == ["first"]


def test_cpu_used_and_busy_time_account():
    sim, node = make_node()
    proc = Process(node, "p")
    proc.exec_after(0.020, lambda: None)
    proc.exec_after(0.030, lambda: None)
    sim.run()
    assert proc.cpu_used == pytest.approx(0.050)
    # kernel process exists but did nothing.
    assert node.cpu.busy_time == pytest.approx(0.050)


def test_usage_fraction_tracks_recent_load():
    sim, node = make_node()
    proc = Process(node, "p")
    active = [True]

    def refill():
        if active[0]:
            proc.exec_after(0.001, refill)

    refill()
    sim.run(until=1.0)
    assert node.cpu.usage_fraction(proc) > 0.9
    # After going idle, the EWMA decays.
    active[0] = False
    sim.at(2.0, lambda: None)
    sim.run(until=2.0)
    assert node.cpu.usage_fraction(proc) < 0.05


def test_invalid_parameters_rejected():
    sim, node = make_node()
    with pytest.raises(ValueError):
        Process(node, "bad", share=0.0)
    with pytest.raises(ValueError):
        Process(node, "bad", reservation=1.5)
    proc = Process(node, "p")
    with pytest.raises(ValueError):
        proc.exec_after(-1.0, lambda: None)


def test_interactive_band_when_enabled():
    """With the optional interactivity bonus on, a low-usage waker with
    a small burst preempts fair-share work (O(1)-scheduler style)."""
    sim, node = make_node()
    node.cpu.interactive_threshold = 0.05
    node.cpu.max_nonpreempt = 0.0
    hog = Process(node, "hog")
    app = Process(node, "app")
    done = []

    def refill():
        hog.exec_after(0.005, refill)

    refill()
    sim.at(0.0025, lambda: app.exec_after(0.0001, lambda: done.append(sim.now)))
    sim.run(until=0.05)
    # Preempts the hog immediately rather than waiting for the chunk end.
    assert done[0] == pytest.approx(0.0026, abs=2e-4)
