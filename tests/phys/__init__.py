"""Test package."""
