"""Unit tests for the HTB egress scheduler."""

import pytest

from repro.net.packet import IPv4Header, OpaquePayload, Packet, PROTO_UDP
from repro.phys.htb import HTB
from repro.sim import Simulator


def make_packet(size=1000):
    return Packet(
        headers=[IPv4Header("10.0.0.1", "10.0.0.2", PROTO_UDP)],
        payload=OpaquePayload(size - 20),
    )


def drain(sim, htb, cls, count, size=1000, interval=0.0):
    sent = []
    for i in range(count):
        sim.at(i * interval, lambda: htb.enqueue(cls, make_packet(size)))
    return sent


def test_single_class_paced_at_line_rate():
    sim = Simulator()
    out = []
    htb = HTB(sim, line_rate=8_000_000, output=lambda p: out.append(sim.now))
    htb.add_class("a", rate=8_000_000)
    for _ in range(3):
        htb.enqueue("a", make_packet(1000))
    sim.run()
    # 1000B at 8Mb/s = 1ms each, back to back; bursts allowed up front.
    assert out[0] == pytest.approx(0.0)
    assert out[1] == pytest.approx(0.001)
    assert out[2] == pytest.approx(0.002)


def test_class_rate_limits_when_below_ceiling():
    sim = Simulator()
    out = []
    htb = HTB(sim, line_rate=100_000_000, output=lambda p: out.append(sim.now))
    # 1 Mb/s ceiling: after the initial burst, 1000B packets leave 8ms apart.
    htb.add_class("slow", rate=1_000_000, ceil=1_000_000, burst=1000)
    for _ in range(4):
        htb.enqueue("slow", make_packet(1000))
    sim.run()
    gaps = [b - a for a, b in zip(out, out[1:])]
    assert all(gap == pytest.approx(0.008, rel=0.05) for gap in gaps)


def test_borrowing_up_to_ceiling_when_idle():
    sim = Simulator()
    out = []
    htb = HTB(sim, line_rate=10_000_000, output=lambda p: out.append(sim.now))
    htb.add_class("a", rate=1_000_000, ceil=10_000_000, burst=2000)
    # With the other class idle, "a" can borrow: 1000B at 10Mb/s = 0.8ms.
    htb.add_class("b", rate=9_000_000)
    for _ in range(2):
        htb.enqueue("a", make_packet(1000))
    sim.run()
    assert out[1] - out[0] == pytest.approx(0.0008, rel=0.05)


def test_fair_split_between_backlogged_classes():
    sim = Simulator()
    counts = {"a": 0, "b": 0}
    htb = HTB(sim, line_rate=8_000_000, output=lambda p: None)
    ca = htb.add_class("a", rate=4_000_000)
    cb = htb.add_class("b", rate=4_000_000)
    for _ in range(50):
        htb.enqueue("a", make_packet(1000))
        htb.enqueue("b", make_packet(1000))
    sim.run()
    assert ca.tx_bytes == cb.tx_bytes == 50_000


def test_minimum_rate_guarantee_under_pressure():
    sim = Simulator()
    htb = HTB(sim, line_rate=10_000_000, output=lambda p: None)
    small = htb.add_class("small", rate=2_500_000)
    big = htb.add_class("big", rate=7_500_000)

    def feed():
        if small.queued_bytes < 10000:
            htb.enqueue("small", make_packet(1000))
        if big.queued_bytes < 10000:
            htb.enqueue("big", make_packet(1000))
        sim.at(0.0005, feed)

    feed()
    sim.run(until=2.0)
    total = small.tx_bytes + big.tx_bytes
    # Small class gets at least its 25% guarantee.
    assert small.tx_bytes / total >= 0.22


def test_queue_limit_drops():
    sim = Simulator()
    htb = HTB(sim, line_rate=1_000_000, output=lambda p: None)
    cls = htb.add_class("a", rate=1_000_000, queue_limit=3000)
    results = [htb.enqueue("a", make_packet(1000)) for _ in range(6)]
    assert False in results
    assert cls.drops >= 1
    sim.run()


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        HTB(sim, line_rate=0, output=lambda p: None)
    htb = HTB(sim, line_rate=1e6, output=lambda p: None)
    with pytest.raises(ValueError):
        htb.add_class("bad", rate=2e6, ceil=1e6)
    htb.add_class("a", rate=1e6)
    with pytest.raises(ValueError):
        htb.add_class("a", rate=1e6)
