"""Integration: HTB attached to a node interface (per-slice egress)."""

import pytest

from repro.phys.node import PhysicalNode, connect
from repro.phys.vserver import Slice
from repro.sim import Simulator


def build(line_rate=10e6):
    sim = Simulator(seed=91)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=1e9, delay=0.001, subnet="192.0.2.0/30",
            queue_bytes=10**7)
    iface = a.interfaces["eth0"]
    iface.install_htb(line_rate=line_rate)
    return sim, a, b, iface


def run_senders(sim, a, b, slices, duration=3.0, rate_bps=20e6):
    """One saturating UDP sender per slice; returns received counters."""
    received = {}
    for index, slice_name in enumerate(slices):
        sliver = a.create_sliver(Slice(slice_name))
        proc = sliver.create_process("gen")
        sock = a.udp_socket(proc, port=6000 + index)
        sink_proc = b.create_sliver(Slice(f"sink-{slice_name}")).create_process("s")
        sink = b.udp_socket(sink_proc, port=7000 + index, rcvbuf=10**7)
        counter = []
        sink.on_receive = lambda pkt, src, sport, c=counter: c.append(pkt.wire_len)
        received[slice_name] = counter
        interval = 1000 * 8 / rate_bps

        def make_ticker(sock, dport, interval):
            def tick():
                if sim.now < duration:
                    sock.sendto(972, "192.0.2.2", dport)
                    sim.at(interval, tick)

            return tick

        sim.call_soon(make_ticker(sock, 7000 + index, interval))
    return received


def test_htb_caps_aggregate_at_line_rate():
    sim, a, b, iface = build(line_rate=10e6)
    iface.htb_class("one", rate=5e6)
    received = run_senders(sim, a, b, ["one"], rate_bps=50e6)
    sim.run(until=5.0)
    delivered = sum(received["one"]) * 8 / 3.0
    assert delivered < 10.5e6  # never beyond the HTB line rate


def test_slices_get_guaranteed_rates():
    sim, a, b, iface = build(line_rate=10e6)
    iface.htb_class("gold", rate=7e6)
    iface.htb_class("bronze", rate=3e6)
    received = run_senders(sim, a, b, ["gold", "bronze"], rate_bps=30e6)
    sim.run(until=5.0)
    gold = sum(received["gold"]) * 8 / 3.0
    bronze = sum(received["bronze"]) * 8 / 3.0
    assert gold == pytest.approx(7e6, rel=0.2)
    assert bronze == pytest.approx(3e6, rel=0.25)


def test_unknown_slice_rides_default_class():
    sim, a, b, iface = build(line_rate=10e6)
    received = run_senders(sim, a, b, ["unregistered"], rate_bps=4e6)
    sim.run(until=5.0)
    assert sum(received["unregistered"]) > 0


def test_idle_bandwidth_is_borrowable():
    sim, a, b, iface = build(line_rate=10e6)
    iface.htb_class("one", rate=2e6)  # ceil defaults to line rate
    received = run_senders(sim, a, b, ["one"], rate_bps=30e6)
    sim.run(until=5.0)
    delivered = sum(received["one"]) * 8 / 3.0
    assert delivered > 6e6  # borrowed far beyond its 2 Mb/s guarantee


def test_htb_class_requires_install():
    sim = Simulator()
    node = PhysicalNode(sim, "x")
    iface = node.add_interface("eth0")
    with pytest.raises(RuntimeError):
        iface.htb_class("s", rate=1e6)
