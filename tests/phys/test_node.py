"""Unit/integration tests for PhysicalNode: kernel stack, sockets, taps."""

import pytest

from repro.net.addr import ip, prefix
from repro.net.packet import (
    ICMP_ECHO_REQUEST,
    ICMPHeader,
    IPv4Header,
    OpaquePayload,
    Packet,
    PROTO_ICMP,
)
from repro.phys.node import PhysicalNode, connect
from repro.phys.vnet import PortConflictError
from repro.phys.vserver import Slice
from repro.sim import Simulator


def two_nodes():
    sim = Simulator()
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=1e9, delay=0.001, subnet="192.0.2.0/30")
    return sim, a, b


def three_nodes_line():
    """a -- f -- b with static routes through f."""
    sim = Simulator()
    a = PhysicalNode(sim, "a")
    f = PhysicalNode(sim, "f")
    b = PhysicalNode(sim, "b")
    connect(sim, a, f, bandwidth=1e9, delay=0.001, subnet="10.1.1.0/30")
    connect(sim, f, b, bandwidth=1e9, delay=0.001, subnet="10.1.2.0/30")
    a.add_route("10.1.2.0/30", interface="eth0", gateway="10.1.1.2")
    b.add_route("10.1.1.0/30", interface="eth0", gateway="10.1.2.1")
    return sim, a, f, b


class TestConfiguration:
    def test_connect_assigns_subnet_addresses(self):
        sim, a, b = two_nodes()
        assert str(a.interfaces["eth0"].address) == "192.0.2.1"
        assert str(b.interfaces["eth0"].address) == "192.0.2.2"
        assert a.is_local("192.0.2.1")
        assert not a.is_local("192.0.2.2")

    def test_connected_route_installed(self):
        sim, a, b = two_nodes()
        found = a.routes.lookup_entry(ip("192.0.2.2"))
        assert found is not None
        assert found[1].interface.name == "eth0"

    def test_duplicate_interface_rejected(self):
        sim = Simulator()
        node = PhysicalNode(sim, "x")
        node.add_interface("eth0")
        with pytest.raises(ValueError):
            node.add_interface("eth0")

    def test_primary_address(self):
        sim, a, b = two_nodes()
        assert str(a.address) == "192.0.2.1"

    def test_no_address_raises(self):
        sim = Simulator()
        node = PhysicalNode(sim, "x")
        with pytest.raises(RuntimeError):
            _ = node.address


class TestUDPDelivery:
    def test_udp_end_to_end(self):
        sim, a, b = two_nodes()
        sender = a.create_sliver(Slice("exp")).create_process("app")
        receiver_sliver = b.create_sliver(Slice("exp2"))
        receiver = receiver_sliver.create_process("app")
        sock_b = b.udp_socket(receiver, port=7000)
        got = []
        sock_b.on_receive = lambda pkt, src, sport: got.append(
            (pkt.payload.size, str(src), sport)
        )
        sock_a = a.udp_socket(sender, port=6000)
        sock_a.sendto(100, "192.0.2.2", 7000)
        sim.run()
        assert got == [(100, "192.0.2.1", 6000)]

    def test_udp_unreachable_port_dropped(self):
        sim, a, b = two_nodes()
        sender = a.create_sliver(Slice("exp")).create_process("app")
        sock_a = a.udp_socket(sender, port=6000)
        sock_a.sendto(100, "192.0.2.2", 7777)
        sim.run()
        assert sim.trace.count("kernel_drop", reason="udp_port_unreachable") == 1

    def test_port_conflict_across_slices(self):
        sim, a, b = two_nodes()
        p1 = a.create_sliver(Slice("one")).create_process("app")
        p2 = a.create_sliver(Slice("two")).create_process("app")
        a.udp_socket(p1, port=6000)
        with pytest.raises(PortConflictError):
            a.udp_socket(p2, port=6000)

    def test_close_releases_port(self):
        sim, a, b = two_nodes()
        proc = a.create_sliver(Slice("one")).create_process("app")
        sock = a.udp_socket(proc, port=6000)
        sock.close()
        a.udp_socket(proc, port=6000)  # rebinding succeeds

    def test_socket_buffer_overflow_drops(self):
        sim, a, b = two_nodes()
        sender = a.create_sliver(Slice("s")).create_process("app")
        slow_owner = b.create_sliver(Slice("r")).create_process("app")
        # Receiver needs 10 ms CPU per datagram, buffer fits ~2 packets.
        sock_b = b.udp_socket(
            slow_owner, port=7000, rcvbuf=2500, recv_cost=lambda p: 0.010
        )
        got = []
        sock_b.on_receive = lambda pkt, src, sport: got.append(pkt.uid)
        sock_a = a.udp_socket(sender, port=6000)
        for _ in range(10):
            sock_a.sendto(1000, "192.0.2.2", 7000)
        sim.run()
        assert sock_b.drops > 0
        assert len(got) + sock_b.drops == 10

    def test_loopback_delivery(self):
        sim, a, b = two_nodes()
        proc = a.create_sliver(Slice("s")).create_process("app")
        sock1 = a.udp_socket(proc, port=5000)
        sock2 = a.udp_socket(proc, port=5001)
        got = []
        sock2.on_receive = lambda pkt, src, sport: got.append(pkt.payload.size)
        sock1.sendto(42, "192.0.2.1", 5001)
        sim.run()
        assert got == [42]


class TestForwarding:
    def test_kernel_forwarding_through_middle_node(self):
        sim, a, f, b = three_nodes_line()
        sender = a.create_sliver(Slice("s")).create_process("app")
        receiver = b.create_sliver(Slice("r")).create_process("app")
        sock_b = b.udp_socket(receiver, port=7000)
        got = []
        sock_b.on_receive = lambda pkt, src, sport: got.append(pkt.ip.ttl)
        sock_a = a.udp_socket(sender, port=6000)
        sock_a.sendto(100, "10.1.2.2", 7000)
        sim.run()
        assert len(got) == 1
        assert got[0] == 63  # one hop decremented TTL
        assert f.forwarded == 1

    def test_forwarding_disabled_drops(self):
        sim, a, f, b = three_nodes_line()
        f.ip_forwarding = False
        sender = a.create_sliver(Slice("s")).create_process("app")
        sock_a = a.udp_socket(sender, port=6000)
        sock_a.sendto(100, "10.1.2.2", 7000)
        sim.run()
        assert f.forwarded == 0
        assert sim.trace.count("kernel_drop", reason="not_local") == 1

    def test_ttl_expiry_generates_icmp(self):
        sim, a, f, b = three_nodes_line()
        sender_sliver = a.create_sliver(Slice("s"))
        sender = sender_sliver.create_process("app")
        errors = []
        a.icmp_errors_to(lambda pkt: errors.append(str(pkt.ip.src)))
        sock_a = a.udp_socket(sender, port=6000)
        sock_a.sendto(100, "10.1.2.2", 7000, ttl=1)
        sim.run()
        assert errors == ["10.1.1.2"]  # f's interface toward a
        assert sim.trace.count("icmp_error", node="f") == 1

    def test_no_route_generates_unreachable(self):
        sim, a, f, b = three_nodes_line()
        sender = a.create_sliver(Slice("s")).create_process("app")
        errors = []
        a.icmp_errors_to(lambda pkt: errors.append(pkt.icmp.type))
        sock_a = a.udp_socket(sender, port=6000)
        a.add_route("203.0.113.0/24", interface="eth0", gateway="10.1.1.2")
        sock_a.sendto(100, "203.0.113.5", 7000)
        sim.run()
        assert errors == [3]  # destination unreachable from f


class TestICMPEcho:
    def test_kernel_answers_echo(self):
        sim, a, b = two_nodes()
        replies = []
        a.icmp_register(ident=55, callback=lambda pkt: replies.append(sim.now))
        request = Packet(
            headers=[
                IPv4Header("192.0.2.1", "192.0.2.2", PROTO_ICMP),
                ICMPHeader(ICMP_ECHO_REQUEST, ident=55, seq=1),
            ],
            payload=OpaquePayload(56),
        )
        a.ip_output(request)
        sim.run()
        assert len(replies) == 1
        assert replies[0] > 0.002  # two propagation delays


class TestTapDevice:
    def make_tap_world(self):
        sim, a, b = two_nodes()
        slice_ = Slice("overlay")
        sliver = a.create_sliver(slice_)
        tap = sliver.create_tap("10.2.0.1", route_prefix="10.2.0.0/16")
        click = sliver.create_process("click")
        return sim, a, sliver, tap, click

    def test_tap_reader_gets_overlay_traffic(self):
        sim, a, sliver, tap, click = self.make_tap_world()
        seen = []
        tap.set_reader(click, lambda pkt: seen.append(str(pkt.ip.dst)))
        app = sliver.create_process("app")
        sock = a.udp_socket(app, port=9000, local_addr="10.2.0.1")
        sock.sendto(10, "10.2.5.5", 9001)  # inside tap prefix, not tap addr
        sim.run()
        assert seen == ["10.2.5.5"]

    def test_tap_write_delivers_to_local_app(self):
        sim, a, sliver, tap, click = self.make_tap_world()
        app = sliver.create_process("app")
        sock = a.udp_socket(app, port=9000, local_addr="10.2.0.1")
        got = []
        sock.on_receive = lambda pkt, src, sport: got.append(str(src))
        from repro.net.packet import PROTO_UDP, UDPHeader

        pkt = Packet(
            headers=[
                IPv4Header("10.2.5.5", "10.2.0.1", PROTO_UDP),
                UDPHeader(9001, 9000),
            ],
            payload=OpaquePayload(10),
        )
        tap.write(pkt)
        sim.run()
        assert got == ["10.2.5.5"]

    def test_tap_without_reader_drops(self):
        sim, a, sliver, tap, click = self.make_tap_world()
        app = sliver.create_process("app")
        sock = a.udp_socket(app, port=9000, local_addr="10.2.0.1")
        sock.sendto(10, "10.2.5.5", 9001)
        sim.run()
        assert tap.drops == 1

    def test_sliver_private_port_space(self):
        """Two slices can bind the same port in their own tap spaces."""
        sim, a, b = two_nodes()
        s1 = a.create_sliver(Slice("one"))
        s2 = a.create_sliver(Slice("two"))
        s1.create_tap("10.2.0.1", route_prefix="10.0.0.0/8")
        s2.create_tap("10.3.0.1", route_prefix="10.0.0.0/8")
        p1 = s1.create_process("app")
        p2 = s2.create_process("app")
        a.udp_socket(p1, port=9000, local_addr="10.2.0.1")
        a.udp_socket(p2, port=9000, local_addr="10.3.0.1")  # no conflict

    def test_multiple_taps_per_sliver(self):
        """A sliver can hold several taps (one per virtual router);
        `sliver.tap` keeps pointing at the first."""
        sim, a, sliver, tap, click = self.make_tap_world()
        second = sliver.create_tap("10.9.0.1")
        assert sliver.taps == [tap, second]
        assert sliver.tap is tap
        assert second.name == "tap1"
