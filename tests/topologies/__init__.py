"""Test package."""
