"""Tests for the built-in topologies."""

import pytest

from repro.tools import Ping
from repro.topologies import (
    ABILENE_LINKS,
    ABILENE_POPS,
    build_abilene,
    build_abilene_iias,
    build_deter,
    build_deter_iias,
    build_full_mesh,
    build_line,
    build_ring,
    build_star,
    build_waxman,
)


class TestDeter:
    def test_physical_forwarding_path(self):
        vini = build_deter()
        ping = Ping(vini.nodes["src"], vini.nodes["sink"].address,
                    interval=0.01, count=20).start()
        vini.run(until=2.0)
        stats = ping.stats()
        assert stats.received == 20
        assert stats.avg_rtt < 0.001  # LAN-scale

    def test_iias_overlay_converges(self):
        vini, exp = build_deter_iias()
        exp.run(until=30.0)
        src = exp.network.nodes["src"]
        sink = exp.network.nodes["sink"]
        assert str(sink.tap_addr) == "192.168.1.2"
        route = src.xorp.rib.lookup(sink.tap_addr)
        assert route is not None
        assert route.protocol == "ospf"


class TestAbilene:
    def test_all_pops_and_links_present(self):
        vini = build_abilene()
        assert len(vini.nodes) == 11
        assert len(vini.links) == 14

    def test_underlay_full_reachability(self):
        vini = build_abilene()
        ping = Ping(vini.nodes["seattle"], vini.nodes["washington"].address,
                    interval=0.5, count=4).start()
        vini.run(until=5.0)
        assert ping.stats().received == 4

    def test_iias_mirror_converges_with_correct_default_path(self):
        vini, exp = build_abilene_iias(seed=1)
        exp.run(until=40.0)
        washington = exp.network.nodes["washington"]
        seattle = exp.network.nodes["seattle"]
        route = washington.xorp.rib.lookup(seattle.tap_addr)
        assert route is not None
        # Paper: default route leaves D.C. through New York.
        assert route.ifname == "to_newyork"

    def test_alternate_path_via_atlanta_after_failure(self):
        vini, exp = build_abilene_iias(seed=2)
        exp.run(until=40.0)
        exp.network.fail_link("denver", "kansascity")
        vini.run(until=80.0)
        washington = exp.network.nodes["washington"]
        seattle = exp.network.nodes["seattle"]
        route = washington.xorp.rib.lookup(seattle.tap_addr)
        assert route is not None
        # Paper: new route through Atlanta, Houston, LA, Sunnyvale.
        assert route.ifname == "to_atlanta"


class TestGenerators:
    def test_line(self):
        vini, exp = build_line(4)
        assert len(exp.network.links) == 3

    def test_ring(self):
        vini, exp = build_ring(5)
        assert len(exp.network.links) == 5

    def test_star(self):
        vini, exp = build_star(4)
        assert len(exp.network.links) == 4
        assert len(exp.network.nodes["hub"].interfaces) == 4

    def test_full_mesh(self):
        vini, exp = build_full_mesh(4)
        assert len(exp.network.links) == 6

    def test_waxman_connected(self):
        import networkx as nx

        vini, exp = build_waxman(12, seed=5)
        graph = nx.Graph()
        for vlink in exp.network.links:
            graph.add_edge(vlink.a.name, vlink.b.name)
        graph.add_nodes_from(exp.network.nodes)
        assert nx.is_connected(graph)

    def test_waxman_deterministic_per_seed(self):
        _, exp1 = build_waxman(10, seed=9)
        _, exp2 = build_waxman(10, seed=9)
        edges1 = {(l.a.name, l.b.name) for l in exp1.network.links}
        edges2 = {(l.a.name, l.b.name) for l in exp2.network.links}
        assert edges1 == edges2
