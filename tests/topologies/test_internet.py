"""The internet-in-a-slice zoo: generation, embedding, convergence.

Section 2.1's bar: realistic multi-AS structure (tiered
transit/customer + peer graph, per-AS IGP areas, eBGP with Gao-Rexford
policy) that *replays* — the same seed must rebuild the identical
internet and converge to the identical routing state. The small-zoo
tests here run in tier 1; the 200-AS / ~1000-router build is gated
behind ``REPRO_SCALE_TESTS=1`` (it rides the tier-2 bench-smoke lane).
"""

import json
import os

import pytest

from repro.net.addr import IPv4Address
from repro.routing.policy import PEER, PROVIDER, is_valley_free
from repro.sim.engine import Simulator
from repro.topologies.internet import (
    STUB,
    TIER1,
    build_internet,
    generate_internet_spec,
)

SMALL = dict(n_as=6, seed=3)
CONVERGE_AT = 60.0


def _spec(n_as, seed, **kwargs):
    return generate_internet_spec(n_as, Simulator(seed=seed).rng, **kwargs)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def test_spec_replays_per_seed():
    first = _spec(24, 11)
    again = _spec(24, 11)
    other = _spec(24, 12)
    assert first.signature() == again.signature()
    assert first.signature() != other.signature()


def test_spec_structure_is_a_tiered_internet():
    spec = _spec(40, 5)
    tier1 = [a for a in spec.ases if a.tier == TIER1]
    stubs = [a for a in spec.ases if a.tier == STUB]
    assert tier1 and stubs
    # The tier-1 core is a full peer clique.
    for i, a in enumerate(tier1):
        for b in tier1[i + 1:]:
            assert spec.rel_of(a.asn, b.asn) == PEER
    # Every non-tier-1 AS bought transit from someone (has a provider).
    for a in spec.ases:
        if a.tier == TIER1:
            continue
        providers = [
            b.asn for b in spec.ases
            if spec.rel_of(a.asn, b.asn) == PROVIDER
        ]
        assert providers, f"as{a.asn} ({a.tier}) has no provider"
    # Border routers belong to the ASes they stitch.
    for e in spec.inter_edges:
        assert e.a_router in spec.by_asn[e.a_asn].routers
        assert e.b_router in spec.by_asn[e.b_asn].routers


def test_spec_rejects_degenerate_sizes():
    with pytest.raises(ValueError):
        _spec(1, 0)


# ----------------------------------------------------------------------
# Embedding: the small zoo, end to end
# ----------------------------------------------------------------------
def test_small_zoo_converges_and_is_valley_free():
    world = build_internet(**SMALL)
    spec = world.spec
    world.run(until=CONVERGE_AT)
    assert world.converged_routers() == spec.n_routers
    # Every anchor holds a valley-free path to every other AS, ending
    # at the true origin.
    for a in spec.ases:
        for b in spec.ases:
            if a.asn == b.asn:
                continue
            path = world.best_as_path(a.anchor, b.asn)
            assert path is not None
            assert path[0] == a.asn and path[-1] == b.asn
            assert is_valley_free(path, spec.rel_of), (
                f"valley in {path} (as{a.asn} -> as{b.asn})"
            )


def test_same_seed_rebuilds_identical_routing_state():
    one = build_internet(**SMALL)
    two = build_internet(**SMALL)
    assert one.spec.signature() == two.spec.signature()
    one.run(until=CONVERGE_AT)
    two.run(until=CONVERGE_AT)
    assert one.converged_routers() == one.spec.n_routers
    assert one.fib_checksum() == two.fib_checksum()


def test_incremental_and_full_spf_reach_the_same_fib():
    """The zoo's FIBs are SPF-mode independent — the differential
    battery's claim, restated at multi-AS scale."""
    incr = build_internet(incremental_spf=True, **SMALL)
    full = build_internet(incremental_spf=False, **SMALL)
    incr.run(until=CONVERGE_AT)
    full.run(until=CONVERGE_AT)
    assert incr.converged_routers() == incr.spec.n_routers
    assert incr.fib_checksum() == full.fib_checksum()


def test_overlay_walks_reach_remote_prefixes():
    from repro.faults.invariants import walk_overlay_path

    world = build_internet(**SMALL)
    spec = world.spec
    world.run(until=CONVERGE_AT)
    nodes = world.network.nodes
    src = spec.ases[0]
    for dst in spec.ases[1:]:
        addr = str(IPv4Address(int(dst.prefix.network) + 1))
        status, path = walk_overlay_path(
            world.network, nodes[src.anchor], nodes[dst.anchor], addr=addr
        )
        assert status == "delivered", (src.anchor, dst.anchor, status, path)


# ----------------------------------------------------------------------
# Scale: the 200-AS / ~1000-router internet (tier-2 lane)
# ----------------------------------------------------------------------
@pytest.mark.tier2_bench_smoke
@pytest.mark.skipif(
    os.environ.get("REPRO_SCALE_TESTS") != "1",
    reason="set REPRO_SCALE_TESTS=1 to run the 200-AS build",
)
def test_200_as_internet_builds_converges_and_replays():
    from repro.obs import MetricsRegistry
    from repro.obs.report import build_report
    from repro.obs.routing import ConvergenceTracker
    from repro.topologies.internet import stuck_route_plan

    def build_and_report():
        old = MetricsRegistry.default_enabled
        MetricsRegistry.default_enabled = False  # keep the JSON stable
        try:
            world = build_internet(n_as=200, seed=1)
        finally:
            MetricsRegistry.default_enabled = old
        spec = world.spec
        assert spec.n_routers >= 900, spec.n_routers
        tracker = ConvergenceTracker(world.experiment).install()
        world.run(until=120.0)
        assert world.converged_routers() == spec.n_routers
        # One controlled episode so the report's tracker block is
        # non-trivial.
        edge = spec.inter_edges[0]
        plan = stuck_route_plan(
            world, edge.a_asn, edge.b_asn, at=121.0, duration=10.0
        )
        world.experiment.apply_faults(plan)
        world.run(until=260.0)
        assert world.converged_routers() == spec.n_routers
        assert tracker.episodes
        report = build_report(
            world.sim, name="internet-200", tracker=tracker,
            meta={"n_as": 200, "routers": spec.n_routers},
        )
        return spec.signature(), world.fib_checksum(), report.to_json()

    sig1, fib1, json1 = build_and_report()
    sig2, fib2, json2 = build_and_report()
    assert sig1 == sig2
    assert fib1 == fib2
    assert json1 == json2  # byte-identical replay, report included
    assert json.loads(json1)["convergence"]["episodes"]
