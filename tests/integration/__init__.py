"""Test package."""
