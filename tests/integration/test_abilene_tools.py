"""Integration: measurement tools on the full Abilene mirror."""

import pytest

from repro.tools import Ping, Traceroute
from repro.topologies import build_abilene_iias


@pytest.fixture(scope="module")
def abilene():
    vini, exp = build_abilene_iias(seed=31)
    exp.run(until=40.0)
    return vini, exp


def test_traceroute_shows_the_papers_default_path(abilene):
    """The D.C. -> Seattle path of Fig. 7: NY, Chicago, Indy, KC, Denver."""
    vini, exp = abilene
    washington = exp.network.nodes["washington"]
    seattle = exp.network.nodes["seattle"]
    trace = Traceroute(
        washington.phys_node, seattle.tap_addr, sliver=washington.sliver,
        max_hops=12,
    ).start()
    vini.run(until=vini.sim.now + 30.0)
    assert trace.done
    hop_names = []
    by_tap = {str(v.tap_addr): name for name, v in exp.network.nodes.items()}
    for hop in trace.path():
        hop_names.append(by_tap.get(hop, hop))
    assert hop_names == [
        "washington",  # the local Click is virtual hop 1
        "newyork",
        "chicago",
        "indianapolis",
        "kansascity",
        "denver",
        "seattle",
    ]


def test_all_pop_pairs_reachable(abilene):
    vini, exp = abilene
    nodes = list(exp.network.nodes.values())
    missing = []
    for src in nodes:
        for dst in nodes:
            if src is dst:
                continue
            if src.xorp.rib.lookup(dst.tap_addr) is None:
                missing.append((src.name, dst.name))
    assert missing == []


def test_rtt_matrix_symmetric(abilene):
    vini, exp = abilene
    washington = exp.network.nodes["washington"]
    seattle = exp.network.nodes["seattle"]
    ping_east = Ping(washington.phys_node, seattle.tap_addr,
                     sliver=washington.sliver, interval=0.5, count=4).start()
    ping_west = Ping(seattle.phys_node, washington.tap_addr,
                     sliver=seattle.sliver, interval=0.5, count=4).start()
    vini.run(until=vini.sim.now + 10.0)
    east = ping_east.stats().avg_rtt
    west = ping_west.stats().avg_rtt
    assert east == pytest.approx(west, rel=0.02)


def test_ospf_metric_matches_link_weights(abilene):
    """Route metrics through the mirror equal the sum of configured
    OSPF costs along the chosen path (validated against networkx)."""
    import networkx as nx

    from repro.topologies.abilene import ABILENE_LINKS, ospf_weight

    vini, exp = abilene
    graph = nx.Graph()
    for (a, b), delay in ABILENE_LINKS.items():
        graph.add_edge(a, b, weight=ospf_weight(delay))
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight="weight"))
    for src_name, src in exp.network.nodes.items():
        for dst_name, dst in exp.network.nodes.items():
            if src_name == dst_name:
                continue
            route = src.xorp.rib.lookup(dst.tap_addr)
            assert route.metric == pytest.approx(lengths[src_name][dst_name])
