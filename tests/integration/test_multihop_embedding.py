"""Integration: virtual links that ride multi-hop physical paths.

VINI's flexible-topology promise (Section 3.1) includes virtual links
between nodes with no direct physical connection: the tunnel rides the
underlying IP network through intermediate VINI nodes. These tests pin
that behavior down, including the failure-masking subtlety the paper
warns about.
"""

import pytest

from repro.core import VINI, Experiment
from repro.tools import Ping


def build_line_with_shortcut(reroute_on_failure=False):
    """Physical line p0-p1-p2-p3; virtual topology has a DIRECT v0=v3
    link that physically rides all three hops."""
    vini = VINI(seed=77)
    for i in range(4):
        vini.add_node(f"p{i}")
    for i in range(3):
        vini.connect(f"p{i}", f"p{i + 1}", delay=0.004)
    vini.install_underlay_routes(reroute_on_failure=reroute_on_failure)
    exp = Experiment(vini, "iias", realtime=True)
    exp.add_node("v0", "p0")
    exp.add_node("v3", "p3")
    exp.connect("v0", "v3", map_physical=False)
    exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
    return vini, exp


def test_virtual_link_rides_multihop_underlay():
    vini, exp = build_line_with_shortcut()
    exp.run(until=20.0)
    v0 = exp.network.nodes["v0"]
    v3 = exp.network.nodes["v3"]
    # One virtual hop...
    route = v0.xorp.rib.lookup(v3.tap_addr)
    assert route.metric == pytest.approx(1.0)
    # ...but three physical propagation delays each way.
    ping = Ping(v0.phys_node, v3.tap_addr, sliver=v0.sliver,
                interval=0.5, count=5).start()
    vini.run(until=25.0)
    stats = ping.stats()
    assert stats.received == 5
    assert stats.avg_rtt > 0.024  # 6 x 4ms propagation


def test_middle_physical_failure_breaks_the_virtual_link():
    """Fate sharing: with static underlay routes, a physical failure
    anywhere on the path kills the tunnel and OSPF notices."""
    vini, exp = build_line_with_shortcut(reroute_on_failure=False)
    exp.run(until=20.0)
    vini.link_between("p1", "p2").fail()
    vini.run(until=40.0)
    v0 = exp.network.nodes["v0"]
    v3 = exp.network.nodes["v3"]
    assert v0.xorp.rib.lookup(v3.tap_addr) is None
    assert v0.xorp.ospf.neighbor_states() == {}


def test_underlay_rerouting_masks_the_failure():
    """The masking behavior Section 3.1 warns about: when the underlying
    IP network reroutes, the experiment never sees the failure."""
    vini = VINI(seed=78)
    for i in range(3):
        vini.add_node(f"p{i}")
    # A triangle: p0-p1 direct plus a detour via p2.
    vini.connect("p0", "p1", delay=0.002)
    vini.connect("p0", "p2", delay=0.002)
    vini.connect("p2", "p1", delay=0.002)
    vini.install_underlay_routes(reroute_on_failure=True)
    exp = Experiment(vini, "iias", realtime=True)
    exp.add_node("v0", "p0")
    exp.add_node("v1", "p1")
    exp.connect("v0", "v1", map_physical=False)
    exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
    exp.run(until=20.0)
    vini.link_between("p0", "p1").fail()
    vini.run(until=40.0)
    v0 = exp.network.nodes["v0"]
    v1 = exp.network.nodes["v1"]
    # The overlay adjacency survives: the failure was masked.
    assert v0.xorp.ospf.neighbor_states() != {}
    assert v0.xorp.rib.lookup(v1.tap_addr) is not None
