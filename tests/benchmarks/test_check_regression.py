"""Tests for the perf-regression guard."""

import json

from benchmarks.check_regression import (
    DEFAULT_METRICS,
    check,
    load_rows,
    main,
    numeric_leaves,
    trend,
)


def _row(commit, wheel, far=None, scale=0.1):
    row = {"commit": commit, "scale": scale,
           "events_per_sec": {"wheel": wheel}}
    if far is not None:
        row["far_events_per_sec"] = {"wheel": far}
    return row


def _write(path, rows):
    with open(path, "w") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")


def test_missing_baseline_is_warn_only(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    assert main(["--trajectory", path]) == 0  # no file at all
    _write(path, [_row("aaa", 1_000_000.0)])
    assert main(["--trajectory", path]) == 0  # single row: no baseline


def test_within_threshold_passes(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 900_000.0, 1_800_000.0)])  # -10%
    assert main(["--trajectory", path]) == 0


def test_regression_fails(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 800_000.0, 1_900_000.0)])  # -20% on one metric
    assert main(["--trajectory", path]) == 1


def test_improvement_passes(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 2_500_000.0, 5_000_000.0)])
    assert main(["--trajectory", path]) == 0


def test_metric_missing_from_baseline_warns_only():
    # An old baseline row without far_events_per_sec must not fail the
    # build after the metric is introduced.
    rows = [{"commit": "aaa", "events_per_sec": {"wheel": 1_000_000.0}},
            _row("bbb", 1_000_000.0, 2_000_000.0)]
    assert check(rows, DEFAULT_METRICS, 0.15) == 0


def test_metric_missing_from_current_fails():
    rows = [_row("aaa", 1_000_000.0, 2_000_000.0),
            {"commit": "bbb", "events_per_sec": {"wheel": 1_000_000.0}}]
    assert check(rows, DEFAULT_METRICS, 0.15) == 1


def test_numeric_leaves_flattens_and_skips_stamp():
    row = {"commit": "aaa", "timestamp": "t", "python": "3.12", "scale": 0.1,
           "events_per_sec": {"wheel": 1_000_000.0, "legacy": 400_000},
           "wall_s": 12.5, "note": "text ignored"}
    leaves = numeric_leaves(row)
    assert leaves == {"events_per_sec.wheel": 1_000_000.0,
                      "events_per_sec.legacy": 400_000.0,
                      "wall_s": 12.5}


def test_trend_prints_every_cell_even_on_pass(tmp_path, capsys):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 950_000.0, 2_000_000.0)])  # -5%: passes
    assert main(["--trajectory", path]) == 0
    out = capsys.readouterr().out
    assert "trend events_per_sec.wheel: 1e+06 -> 950000 (-5.0%)" in out
    assert "trend far_events_per_sec.wheel: 2e+06 -> 2e+06 (+0.0%)" in out


def test_trend_marks_new_and_missing_cells(capsys):
    rows = [{"commit": "aaa", "events_per_sec": {"wheel": 1_000_000.0},
             "old_cell": 5.0},
            {"commit": "bbb", "events_per_sec": {"wheel": 1_000_000.0},
             "new_cell": 7.0}]
    trend(rows)
    out = capsys.readouterr().out
    assert "trend new_cell: (new) -> 7" in out
    assert "trend old_cell: 5 -> (missing)" in out


def test_trend_noop_without_baseline(capsys):
    trend([_row("aaa", 1_000_000.0)])
    assert capsys.readouterr().out == ""


def test_corrupt_lines_are_skipped(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    with open(path, "w") as handle:
        handle.write("{not json\n")
        handle.write(json.dumps(_row("aaa", 1_000_000.0)) + "\n")
    assert len(load_rows(path)) == 1


# ----------------------------------------------------------------------
# Archive-backed attribution on REGRESSION verdicts
# ----------------------------------------------------------------------
def _fixture_archive(root, payload):
    """Write a minimal repro.archive/1 tree: cell.json + manifest."""
    import hashlib
    import os

    os.makedirs(root, exist_ok=True)
    cell = os.path.join(root, "cell.json")
    with open(cell, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
    digest = hashlib.sha256(open(cell, "rb").read()).hexdigest()
    manifest = {
        "schema": "repro.archive/1",
        "name": os.path.basename(root),
        "meta": {"seed": 0},
        "artifacts": {
            "cell.json": {"path": "cell.json", "kind": "bench_cell",
                          "bytes": os.path.getsize(cell), "sha256": digest},
        },
    }
    path = os.path.join(root, "manifest.json")
    with open(path, "w") as handle:
        json.dump(manifest, handle, sort_keys=True)
    return path


def _archived_rows(tmp_path, base_payload, cur_payload,
                   base_rate=1_000_000.0, cur_rate=700_000.0):
    man_a = _fixture_archive(
        str(tmp_path / "base" / "engine_wheel_0"), base_payload)
    man_b = _fixture_archive(
        str(tmp_path / "cur" / "engine_wheel_0"), cur_payload)
    return [
        dict(_row("aaa", base_rate), archives={"engine_wheel_0": man_a}),
        dict(_row("bbb", cur_rate), archives={"engine_wheel_0": man_b}),
    ]


def test_regression_attribution_names_top_shifted_metrics(
        tmp_path, capsys):
    """A synthetic >15% drop with archives on both rows prints the
    archive-backed attribution: which artifacts changed and which
    cell.json leaves shifted most."""
    rows = _archived_rows(
        tmp_path,
        {"metrics": {"dispatch_batches": 5000, "events": 100000,
                     "cascades": 10}},
        {"metrics": {"dispatch_batches": 9000, "events": 100000,
                     "cascades": 11}},
    )
    assert check(rows, ("events_per_sec.wheel",), 0.15) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "attribution engine_wheel_0: 1 artifact(s) changed" in out
    assert "shifted metrics.dispatch_batches: 5000 -> 9000 (+80.0%)" in out
    assert "shifted metrics.cascades: 10 -> 11 (+10.0%)" in out
    # The biggest relative shift is named first.
    assert out.index("dispatch_batches") < out.index("cascades")


def test_attribution_identical_artifacts_blame_the_machine(
        tmp_path, capsys):
    payload = {"metrics": {"dispatch_batches": 5000}}
    rows = _archived_rows(tmp_path, payload, payload)
    assert check(rows, ("events_per_sec.wheel",), 0.15) == 1
    out = capsys.readouterr().out
    assert "artifacts byte-identical" in out
    assert "wall-clock-only regression" in out


def test_attribution_without_archives_points_at_archive_dir(capsys):
    rows = [_row("aaa", 1_000_000.0), _row("bbb", 700_000.0)]
    assert check(rows, ("events_per_sec.wheel",), 0.15) == 1
    out = capsys.readouterr().out
    assert "no archives recorded" in out and "--archive-dir" in out


def test_attribution_handles_missing_archive_on_disk(tmp_path, capsys):
    rows = _archived_rows(
        tmp_path,
        {"metrics": {"x": 1}}, {"metrics": {"x": 2}},
    )
    rows[0]["archives"]["engine_wheel_0"] = str(
        tmp_path / "gone" / "manifest.json")
    assert check(rows, ("events_per_sec.wheel",), 0.15) == 1
    out = capsys.readouterr().out
    assert "baseline archive missing" in out


def test_archives_key_is_not_a_trend_cell():
    row = dict(_row("aaa", 1_000_000.0),
               archives={"engine_wheel_0": "x/manifest.json"})
    assert all(not key.startswith("archives")
               for key in numeric_leaves(row))
