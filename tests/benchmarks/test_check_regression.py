"""Tests for the perf-regression guard."""

import json

from benchmarks.check_regression import (
    DEFAULT_METRICS,
    check,
    load_rows,
    main,
    numeric_leaves,
    trend,
)


def _row(commit, wheel, far=None, scale=0.1):
    row = {"commit": commit, "scale": scale,
           "events_per_sec": {"wheel": wheel}}
    if far is not None:
        row["far_events_per_sec"] = {"wheel": far}
    return row


def _write(path, rows):
    with open(path, "w") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")


def test_missing_baseline_is_warn_only(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    assert main(["--trajectory", path]) == 0  # no file at all
    _write(path, [_row("aaa", 1_000_000.0)])
    assert main(["--trajectory", path]) == 0  # single row: no baseline


def test_within_threshold_passes(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 900_000.0, 1_800_000.0)])  # -10%
    assert main(["--trajectory", path]) == 0


def test_regression_fails(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 800_000.0, 1_900_000.0)])  # -20% on one metric
    assert main(["--trajectory", path]) == 1


def test_improvement_passes(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 2_500_000.0, 5_000_000.0)])
    assert main(["--trajectory", path]) == 0


def test_metric_missing_from_baseline_warns_only():
    # An old baseline row without far_events_per_sec must not fail the
    # build after the metric is introduced.
    rows = [{"commit": "aaa", "events_per_sec": {"wheel": 1_000_000.0}},
            _row("bbb", 1_000_000.0, 2_000_000.0)]
    assert check(rows, DEFAULT_METRICS, 0.15) == 0


def test_metric_missing_from_current_fails():
    rows = [_row("aaa", 1_000_000.0, 2_000_000.0),
            {"commit": "bbb", "events_per_sec": {"wheel": 1_000_000.0}}]
    assert check(rows, DEFAULT_METRICS, 0.15) == 1


def test_numeric_leaves_flattens_and_skips_stamp():
    row = {"commit": "aaa", "timestamp": "t", "python": "3.12", "scale": 0.1,
           "events_per_sec": {"wheel": 1_000_000.0, "legacy": 400_000},
           "wall_s": 12.5, "note": "text ignored"}
    leaves = numeric_leaves(row)
    assert leaves == {"events_per_sec.wheel": 1_000_000.0,
                      "events_per_sec.legacy": 400_000.0,
                      "wall_s": 12.5}


def test_trend_prints_every_cell_even_on_pass(tmp_path, capsys):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    _write(path, [_row("aaa", 1_000_000.0, 2_000_000.0),
                  _row("bbb", 950_000.0, 2_000_000.0)])  # -5%: passes
    assert main(["--trajectory", path]) == 0
    out = capsys.readouterr().out
    assert "trend events_per_sec.wheel: 1e+06 -> 950000 (-5.0%)" in out
    assert "trend far_events_per_sec.wheel: 2e+06 -> 2e+06 (+0.0%)" in out


def test_trend_marks_new_and_missing_cells(capsys):
    rows = [{"commit": "aaa", "events_per_sec": {"wheel": 1_000_000.0},
             "old_cell": 5.0},
            {"commit": "bbb", "events_per_sec": {"wheel": 1_000_000.0},
             "new_cell": 7.0}]
    trend(rows)
    out = capsys.readouterr().out
    assert "trend new_cell: (new) -> 7" in out
    assert "trend old_cell: 5 -> (missing)" in out


def test_trend_noop_without_baseline(capsys):
    trend([_row("aaa", 1_000_000.0)])
    assert capsys.readouterr().out == ""


def test_corrupt_lines_are_skipped(tmp_path):
    path = str(tmp_path / "TRAJECTORY_core.jsonl")
    with open(path, "w") as handle:
        handle.write("{not json\n")
        handle.write(json.dumps(_row("aaa", 1_000_000.0)) + "\n")
    assert len(load_rows(path)) == 1
