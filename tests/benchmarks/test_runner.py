"""Tests for the multiprocess benchmark runner.

The smoke tests (``tier2_bench_smoke`` marker, ``make tier2-bench-smoke``)
run every bench cell at a tiny scale so a broken benchmark is caught in
seconds without paying for a full perf run. The parity test is the
runner's core contract: sharding cells across worker processes must not
change any deterministic result.
"""

import json

import pytest

from benchmarks.runner import (
    BENCHES,
    aggregate,
    default_cells,
    run_cell,
    run_cells,
    write_artifact,
)

TINY = 0.02  # keeps the whole smoke suite under ~5 seconds


def _deterministic(results):
    """Strip wall-clock fields; keep everything that must be stable."""
    return [
        {k: r[k] for k in ("bench", "config", "seed", "scale", "metrics")}
        for r in results
    ]


@pytest.mark.tier2_bench_smoke
def test_every_cell_runs_at_tiny_scale():
    cells = default_cells(scale=TINY, seeds=(0,))
    # One cell per (bench, config): every registered config is covered.
    assert len(cells) == sum(len(configs) for _fn, configs in BENCHES.values())
    results = run_cells(cells, workers=1)
    for r in results:
        assert r["perf"]["wall_s"] >= 0.0
        assert r["metrics"]
    summary = aggregate(results)["summary"]
    assert summary["events_per_sec"]["wheel"] > 0
    assert summary["lookups_per_sec"] > 0
    assert summary["internet_spf_events_per_sec"]["incr"] > 0
    assert summary["internet_spf_speedup"] > 0


@pytest.mark.tier2_bench_smoke
def test_internet_zoo_configs_share_a_fib():
    """Incremental and full SPF converge the tiny internet to the
    identical FIB — the differential claim, checked in the bench lane."""
    incr, full = [
        run_cell({"bench": "internet_zoo", "config": config,
                  "seed": 0, "scale": TINY})
        for config in BENCHES["internet_zoo"][1]
    ]
    assert incr["metrics"]["converged_routers"] == incr["metrics"]["routers"]
    assert full["metrics"]["converged_routers"] == full["metrics"]["routers"]
    assert incr["metrics"]["fib_checksum"] == full["metrics"]["fib_checksum"]
    assert incr["metrics"]["spf_incremental_runs"] > 0
    assert full["metrics"]["spf_incremental_runs"] == 0


@pytest.mark.tier2_bench_smoke
def test_parallel_matches_sequential():
    cells = default_cells(scale=TINY, seeds=(0, 1))
    sequential = run_cells(cells, workers=1)
    parallel = run_cells(cells, workers=2)
    assert _deterministic(sequential) == _deterministic(parallel)


@pytest.mark.tier2_bench_smoke
def test_engine_metrics_identical_across_configs():
    """Wheel, heap, and the inlined seed engine run the same schedule."""
    results = [
        run_cell({"bench": "engine", "config": config, "seed": 0, "scale": 0.05})
        for config in BENCHES["engine"][1]
    ]
    first = results[0]["metrics"]
    for r in results[1:]:
        assert r["metrics"] == first


def test_artifact_appends_runs(tmp_path):
    path = str(tmp_path / "BENCH_core.json")
    write_artifact({"n": 1}, path)
    write_artifact({"n": 2}, path)
    with open(path) as handle:
        data = json.load(handle)
    assert data["schema"] == 1
    assert [run["n"] for run in data["runs"]] == [1, 2]


def test_artifact_survives_corruption(tmp_path):
    path = str(tmp_path / "BENCH_core.json")
    with open(path, "w") as handle:
        handle.write("{not json")
    write_artifact({"n": 3}, path)
    with open(path) as handle:
        data = json.load(handle)
    assert [run["n"] for run in data["runs"]] == [3]


def test_unknown_bench_config_rejected():
    with pytest.raises(ValueError):
        run_cell({"bench": "engine", "config": "bogus", "seed": 0, "scale": TINY})


def test_archive_dir_cells_land_manifested_archives(tmp_path):
    """With ``archive_dir`` in the spec, a cell writes a RunArchive
    whose ``cell.json`` is deterministic (perf excluded) and returns
    the manifest reference recorded in BENCH_core.json."""
    import os

    from repro.obs.archive import load_manifest, resolve_artifact

    spec = {"bench": "lookup", "config": "radix", "seed": 0,
            "scale": TINY, "archive_dir": str(tmp_path / "arch")}
    merged = run_cell(dict(spec))
    assert "archive_dir" not in merged  # per-invocation knob stripped
    ref = merged["archive"]
    manifest_path = str(tmp_path / "arch" / "lookup_radix_0" /
                        "manifest.json")
    assert os.path.exists(manifest_path)
    manifest = load_manifest(manifest_path)
    assert ref["artifacts"] == {
        name: entry["sha256"]
        for name, entry in manifest["artifacts"].items()
    }
    cell_doc = json.load(open(resolve_artifact(manifest, "cell.json")))
    assert cell_doc["bench"] == "lookup" and "perf" not in cell_doc
    assert cell_doc["metrics"] == merged["metrics"]

    # A same-seed re-run reproduces the identical cell.json hash even
    # though its wall-clock perf numbers differ.
    again = run_cell(dict(spec))
    assert again["archive"]["artifacts"]["cell.json"] \
        == ref["artifacts"]["cell.json"]
    assert os.environ.get("REPRO_RUN_ARCHIVE") is None  # env restored


def test_scenario_cell_archive_collects_run_metadata(tmp_path):
    """Scenario cells (the zoo) attach the archive through the env
    hook, so the manifest carries run identity on top of cell.json."""
    merged = run_cell({"bench": "internet_zoo", "config": "incr",
                       "seed": 0, "scale": TINY,
                       "archive_dir": str(tmp_path / "arch")})
    from repro.obs.archive import load_manifest

    manifest = load_manifest(
        str(tmp_path / "arch" / "internet_zoo_incr_0"))
    assert manifest["meta"]["seed"] == 0
    assert manifest["meta"]["events"] > 0
    assert "config_signature" in manifest["meta"]
    assert "cell.json" in manifest["artifacts"]
    assert merged["archive"]["manifest"].endswith("manifest.json")
