"""The max-min solver: worked examples plus Hypothesis properties.

The solver is deliberately engine-free (plain sequences/mappings in,
rates out), so these tests need no simulator. The properties are the
contract the coupling layer leans on: allocations never exceed any
link's capacity, demand caps are respected, every unfrozen class sits
on a saturated link (max-min optimality), and the answer does not
depend on the order classes are presented in.
"""

import pytest

from repro.traffic import max_min_rates, tcp_steady_state_cap

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

INF = float("inf")


# ----------------------------------------------------------------------
# Worked examples
# ----------------------------------------------------------------------
def test_single_bottleneck_fair_share():
    result = max_min_rates(
        paths=[["l"], ["l"]],
        capacities={"l": 10e6},
        demands=[None, None],
    )
    assert result.rates[0] == pytest.approx(5e6)
    assert result.rates[1] == pytest.approx(5e6)
    assert result.residual["l"] == pytest.approx(0.0, abs=1.0)


def test_demand_capped_class_frees_capacity():
    result = max_min_rates(
        paths=[["l"], ["l"]],
        capacities={"l": 10e6},
        demands=[2e6, None],
    )
    assert result.rates[0] == pytest.approx(2e6)
    assert result.rates[1] == pytest.approx(8e6)


def test_classic_parking_lot():
    # The textbook 3-link parking lot: one long flow crosses all links,
    # one cross flow per link. Max-min gives everyone C/2.
    result = max_min_rates(
        paths=[["l0", "l1", "l2"], ["l0"], ["l1"], ["l2"]],
        capacities={"l0": 8e6, "l1": 8e6, "l2": 8e6},
    )
    for rate in result.rates:
        assert rate == pytest.approx(4e6)


def test_counts_scale_class_share():
    # 3 flows in one class vs 1 in the other: per-flow fairness, so the
    # aggregate splits 3:1.
    result = max_min_rates(
        paths=[["l"], ["l"]],
        capacities={"l": 8e6},
        counts=[3, 1],
    )
    assert result.rates[0] == pytest.approx(2e6)  # per-flow
    assert result.rates[1] == pytest.approx(2e6)


def test_unconstrained_links_do_not_bottleneck():
    # Links absent from ``capacities`` are infinite; only l constrains.
    result = max_min_rates(
        paths=[["fat0", "l", "fat1"]],
        capacities={"l": 5e6},
    )
    assert result.rates[0] == pytest.approx(5e6)


def test_dead_link_pins_class_to_zero():
    result = max_min_rates(
        paths=[["dead"], ["live"]],
        capacities={"dead": 0.0, "live": 4e6},
    )
    assert result.rates[0] == 0.0
    assert result.rates[1] == pytest.approx(4e6)


def test_tcp_steady_state_cap():
    # Window-limited: one window per RTT.
    assert tcp_steady_state_cap(0.028, window_bytes=16384) == pytest.approx(
        16384 * 8 / 0.028
    )
    # Loss switches in the Mathis bound, which must only tighten.
    lossy = tcp_steady_state_cap(0.028, window_bytes=10**9, loss_rate=0.01)
    clean = tcp_steady_state_cap(0.028, window_bytes=10**9)
    assert lossy < clean
    assert tcp_steady_state_cap(0.0) == INF


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@st.composite
def scenarios(draw):
    n_links = draw(st.integers(min_value=1, max_value=5))
    links = [f"l{i}" for i in range(n_links)]
    capacities = {
        link: draw(st.floats(min_value=1e5, max_value=1e9)) for link in links
    }
    n_classes = draw(st.integers(min_value=1, max_value=8))
    paths, demands, counts = [], [], []
    for _ in range(n_classes):
        paths.append(draw(st.lists(st.sampled_from(links), min_size=1,
                                   max_size=n_links, unique=True)))
        demands.append(draw(st.one_of(
            st.none(),
            st.floats(min_value=1e3, max_value=1e8),
        )))
        counts.append(draw(st.integers(min_value=1, max_value=1000)))
    return paths, capacities, demands, counts


def _link_loads(paths, counts, rates):
    loads = {}
    for path, count, rate in zip(paths, counts, rates):
        for link in path:
            loads[link] = loads.get(link, 0.0) + rate * count
    return loads


@given(scenarios())
@settings(max_examples=60, deadline=None)
def test_solver_conserves_capacity(scenario):
    paths, capacities, demands, counts = scenario
    result = max_min_rates(paths, capacities, demands, counts)
    loads = _link_loads(paths, counts, result.rates)
    for link, capacity in capacities.items():
        assert loads.get(link, 0.0) <= capacity * (1 + 1e-9)
    for rate, demand in zip(result.rates, demands):
        cap = INF if demand is None else demand
        assert 0.0 <= rate <= cap * (1 + 1e-9)


@given(scenarios())
@settings(max_examples=60, deadline=None)
def test_solver_is_max_min_optimal(scenario):
    """Every class not at its demand cap crosses a saturated link —
    no rate could be raised without cutting into someone else's."""
    paths, capacities, demands, counts = scenario
    result = max_min_rates(paths, capacities, demands, counts)
    loads = _link_loads(paths, counts, result.rates)
    for i, path in enumerate(paths):
        cap = INF if demands[i] is None else demands[i]
        if cap < INF and result.rates[i] >= cap * (1 - 1e-9):
            continue  # demand-capped
        assert any(
            loads.get(link, 0.0) >= capacities[link] * (1 - 1e-6)
            for link in path
        ), f"class {i} is neither demand-capped nor bottlenecked"


@given(scenarios(), st.permutations(range(8)))
@settings(max_examples=60, deadline=None)
def test_solver_is_order_invariant(scenario, perm):
    paths, capacities, demands, counts = scenario
    baseline = max_min_rates(paths, capacities, demands, counts)
    order = [i for i in perm if i < len(paths)]
    shuffled = max_min_rates(
        [paths[i] for i in order],
        capacities,
        [demands[i] for i in order],
        [counts[i] for i in order],
    )
    for pos, i in enumerate(order):
        assert shuffled.rates[pos] == pytest.approx(
            baseline.rates[i], rel=1e-9, abs=1e-6
        )
