"""The fluid traffic plane: rates, completions, coupling, replay.

Everything here runs on small topologies and asserts exact,
deterministic behavior — fair shares to the bit, completions at the
processor-sharing instant, same-seed byte-identical reports.
"""

import json

import pytest

from repro.obs import build_report
from repro.topologies import build_dumbbell, build_star
from repro.traffic import (
    FluidTrafficPlane,
    TraceReplay,
    TrafficMatrix,
)

BOTTLENECK = 10e6
USABLE = BOTTLENECK * 0.98  # headroom=0.02 default


def make_dumbbell(seed=5):
    vini, exp = build_dumbbell(pairs=2, bottleneck=BOTTLENECK,
                               seed=seed, realtime=False)
    return vini, FluidTrafficPlane(vini)


class TestRates:
    def test_elastic_flows_split_the_bottleneck(self):
        vini, plane = make_dumbbell()
        f0 = plane.add_flow("s0", "r0")
        f1 = plane.add_flow("s1", "r1")
        vini.run(until=0.1)
        assert f0.rate_bps == pytest.approx(USABLE / 2)
        assert f1.rate_bps == pytest.approx(USABLE / 2)

    def test_demand_cap_is_respected(self):
        vini, plane = make_dumbbell()
        small = plane.add_flow("s0", "r0", demand_bps=1e6)
        big = plane.add_flow("s1", "r1")
        vini.run(until=0.1)
        assert small.rate_bps == pytest.approx(1e6)
        assert big.rate_bps == pytest.approx(USABLE - 1e6)

    def test_window_cap_uses_path_rtt(self):
        vini, plane = make_dumbbell()
        flow = plane.add_flow("s0", "r0", window_bytes=16384)
        vini.run(until=0.1)
        # Path delays: 0.002 + 0.01 + 0.002, RTT double that.
        rtt = 2 * (0.002 + 0.01 + 0.002)
        assert flow.rate_bps == pytest.approx(16384 * 8 / rtt)

    def test_count_aggregates_share_per_flow(self):
        vini, plane = make_dumbbell()
        crowd = plane.add_flow("s0", "r0", count=1000)
        vini.run(until=0.1)
        assert crowd.rate_bps == pytest.approx(USABLE / 1000)
        assert plane.stats["flows_active"] == 1000
        assert plane.stats["classes"] == 1

    def test_served_bytes_advances_between_events(self):
        vini, plane = make_dumbbell()
        flow = plane.add_flow("s0", "r0")
        vini.run(until=2.0)
        # One elastic flow alone: the whole usable bottleneck for ~2 s.
        assert flow.served_bytes == pytest.approx(
            USABLE / 8 * 2.0, rel=0.05
        )


class TestCompletions:
    def test_finite_flow_completes_at_the_fluid_instant(self):
        vini, plane = make_dumbbell()
        flow = plane.add_flow("s0", "r0", size_bytes=125_000)
        vini.run(until=5.0)
        assert not flow.active
        # 125 kB at the full usable bottleneck.
        assert flow.end == pytest.approx(125_000 * 8 / USABLE, rel=1e-6)
        assert plane.stats["flows_completed"] == 1

    def test_completion_reflects_rate_changes(self):
        vini, plane = make_dumbbell(seed=6)
        flow = plane.add_flow("s0", "r0", size_bytes=125_000)
        # A competitor arrives halfway through the transfer.
        t_half = 125_000 * 8 / USABLE / 2
        vini.sim.schedule(t_half, lambda: plane.add_flow("s1", "r1"))
        vini.run(until=5.0)
        # First half at full rate, second half at half rate.
        expected = t_half + (125_000 / 2) * 8 / (USABLE / 2)
        assert flow.end == pytest.approx(expected, rel=1e-3)

    def test_stopped_flow_frees_its_share(self):
        vini, plane = make_dumbbell()
        doomed = plane.add_flow("s0", "r0")
        keeper = plane.add_flow("s1", "r1")
        vini.sim.schedule(1.0, doomed.stop)
        vini.run(until=2.0)
        assert not doomed.active
        assert keeper.rate_bps == pytest.approx(USABLE)
        assert plane.stats["flows_active"] == 1

    def test_solves_stay_rare(self):
        # The whole scenario above needs a handful of solves — one per
        # demand change, never per-packet or per-tick.
        vini, plane = make_dumbbell()
        plane.add_flow("s0", "r0", size_bytes=125_000)
        plane.add_flow("s1", "r1")
        vini.run(until=5.0)
        assert plane.stats["solver_runs"] <= 4


class TestCoupling:
    def test_fluid_occupancy_lands_on_the_channel(self):
        vini, plane = make_dumbbell()
        plane.add_flow("s0", "r0")
        vini.run(until=0.1)
        link = vini.link_between("rl", "rr")
        sender = next(
            iface for iface in link.endpoints if iface.node.name == "rl"
        )
        channel = link._channels[sender]
        assert channel.fluid_bps == pytest.approx(USABLE)
        util = plane.utilization()[(link.name, "rl")]
        assert util == pytest.approx(0.98)

    def test_channel_clears_when_flows_stop(self):
        vini, plane = make_dumbbell()
        flow = plane.add_flow("s0", "r0")
        vini.sim.schedule(0.5, flow.stop)
        vini.run(until=1.0)
        link = vini.link_between("rl", "rr")
        assert all(ch.fluid_bps == 0.0 for ch in link._channels.values())

    def test_link_failure_zeroes_rates_and_recovery_restores(self):
        vini, plane = make_dumbbell()
        flow = plane.add_flow("s0", "r0")
        link = vini.link_between("rl", "rr")
        vini.sim.schedule(1.0, link.fail)
        vini.sim.schedule(2.0, link.recover)

        probes = {}
        vini.sim.schedule(1.5, lambda: probes.update(down=flow.rate_bps))
        vini.run(until=3.0)
        assert probes["down"] == 0.0
        assert flow.rate_bps == pytest.approx(USABLE)

    def test_metrics_registry_sees_the_plane(self):
        vini, plane = make_dumbbell()
        plane.add_flow("s0", "r0", count=7)
        vini.run(until=0.1)
        collected = vini.sim.metrics.collect()
        by_name = {m["name"]: m for m in collected}
        assert by_name["traffic.flows_active"]["value"] == 7
        assert by_name["traffic.solver_runs"]["value"] >= 1
        assert "traffic.link_fluid_util" in by_name


class TestMatrixAndReport:
    def test_install_matrix_expands_pairs(self):
        vini, plane = make_dumbbell()
        tm = TrafficMatrix().add("s0", "r0", 4e6).add("s1", "r1", 2e6)
        flows = plane.install_matrix(tm, users_per_pair=4)
        vini.run(until=0.1)
        assert len(flows) == 2
        assert plane.stats["flows_active"] == 8
        assert flows[0].rate_bps == pytest.approx(1e6)  # 4e6 / 4 users

    def test_report_carries_a_traffic_section(self):
        vini, plane = make_dumbbell()
        plane.add_flow("s0", "r0", count=3)
        vini.run(until=0.5)
        report = build_report(vini.sim, name="hybrid", traffic=plane)
        section = report.data["traffic"]
        assert section["flows"]["active"] == 3
        assert section["solver"]["runs"] >= 1
        assert any(row["util"] > 0 for row in section["links"])
        markdown = report.to_markdown()
        assert "Fluid link occupancy" in markdown


class TestDeterminism:
    """Same seed => the same hybrid simulation, byte for byte.

    Packet ``uid``s and ping ``ident``s come from process-global
    counters (fresh per OS process, so cross-process replays — the real
    reproducibility contract — match exactly); running twice in one
    test process they keep counting, so the serializers below mask
    them and nothing else.
    """

    @staticmethod
    def _hybrid_run(seed):
        """A star overlay with fluid background and a packet probe."""
        import re

        from repro.tools import Ping

        vini, exp = build_star(3, bandwidth=20e6, seed=seed,
                               name="hybrid-det", realtime=False)
        exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
        exp.run(until=20.0)
        plane = FluidTrafficPlane(exp)
        leaf0 = exp.network.nodes["leaf0"]
        hub = exp.network.nodes["hub"]
        Ping(leaf0.phys_node, hub.tap_addr, sliver=leaf0.sliver,
             interval=0.25, count=20).start()
        start = vini.sim.now
        vini.sim.schedule(start + 1.0, lambda: plane.add_flow(
            "leaf1", "leaf0", demand_bps=50e3, count=500))
        replay = TraceReplay.from_records(
            [
                {"start": 2.0, "src": "leaf2", "dst": "leaf0",
                 "bytes": 2e6, "count": 50},
                (3.0, "leaf1", "hub", None, 1e6, 10),
            ],
            jitter=0.1,
        )
        replay.install(plane, offset=start)
        vini.run(until=start + 8.0)
        report = build_report(vini.sim, name="hybrid", traffic=plane)
        serialized = json.dumps(report.data, sort_keys=True, default=str)
        serialized = re.sub(r'"ident": \d+', '"ident": N', serialized)
        trace = "\n".join(
            f"{r.time:.9f} {r.kind} "
            f"{sorted(i for i in r.fields.items() if i[0] != 'uid')!r}"
            for r in vini.sim.trace.records
        )
        return serialized, trace

    def test_same_seed_hybrid_runs_are_byte_identical(self):
        report_a, trace_a = self._hybrid_run(seed=21)
        report_b, trace_b = self._hybrid_run(seed=21)
        assert report_a == report_b
        assert trace_a == trace_b

    def test_different_seed_changes_the_run(self):
        _report_a, trace_a = self._hybrid_run(seed=21)
        _report_b, trace_b = self._hybrid_run(seed=22)
        assert trace_a != trace_b


class TestReplay:
    def test_csv_and_jsonl_round_trip(self, tmp_path):
        csv_path = tmp_path / "sched.csv"
        csv_path.write_text(
            "start,src,dst,bytes,rate,count\n"
            "0.5,s0,r0,1000000,,2\n"
            "1.5,s1,r1,,2000000,1\n"
        )
        jsonl_path = tmp_path / "sched.jsonl"
        jsonl_path.write_text(
            '{"start": 0.5, "src": "s0", "dst": "r0", "bytes": 1000000,'
            ' "count": 2}\n'
            '{"start": 1.5, "src": "s1", "dst": "r1", "rate": 2000000}\n'
        )
        from_csv = TraceReplay.from_csv(str(csv_path))
        from_jsonl = TraceReplay.from_jsonl(str(jsonl_path))
        for replay in (from_csv, from_jsonl):
            assert len(replay.records) == 2
            assert replay.records[0].size_bytes == 1000000.0
            assert replay.records[0].count == 2
            assert replay.records[1].rate_bps == 2000000.0

    def test_speed_compresses_time_and_scales_rates(self):
        vini, plane = make_dumbbell()
        TraceReplay.from_records(
            [(4.0, "s0", "r0", None, 1e6)], speed=4.0
        ).install(plane)
        vini.run(until=1.1)
        # Scheduled at 4.0/4 = 1.0, demanding 1e6 * 4.
        assert plane.stats["flows_active"] == 1
        (flow,) = plane.flows.values()
        assert flow.start == pytest.approx(1.0)
        assert flow.rate_bps == pytest.approx(4e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceReplay([], speed=0.0)
        from repro.traffic import ReplayRecord

        with pytest.raises(ValueError):
            ReplayRecord(-1.0, "a", "b")
        with pytest.raises(ValueError):
            ReplayRecord(0.0, "a", "b", count=0)
