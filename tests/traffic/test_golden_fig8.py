"""The traffic plane must not perturb a packet-only run by a byte.

``repro.traffic`` couples into the packet hot path (channel serialize,
queue admission, shaper refill), so the zero-cost-when-disabled claim
is a golden-trace contract, not a code-review judgment: the Fig-8
failover scenario must replay byte-identically with the traffic plane
imported — and even *running*, against its own simulator — as long as
no plane is installed on the measured run.
"""

from tests.faults.test_golden_fig8 import _run, _serialize, _with_plan


def test_fig8_unchanged_with_traffic_plane_loaded():
    baseline = _serialize(_run(_with_plan))

    # Import the whole package and exercise a plane on a *side*
    # simulator — flows, completions, a replay, the works.
    from repro.topologies import build_dumbbell
    from repro.traffic import FluidTrafficPlane, TraceReplay

    side_vini, _exp = build_dumbbell(pairs=2, seed=77, realtime=False)
    side_plane = FluidTrafficPlane(side_vini)
    side_plane.add_flow("s0", "r0", count=10)
    side_plane.add_flow("s1", "r1", size_bytes=5e4)
    TraceReplay.from_records(
        [(0.5, "s0", "r1", 2e6, None, 10)], jitter=0.05
    ).install(side_plane)
    side_vini.run(until=5.0)
    assert side_plane.stats["flows_completed"] >= 1

    assert _serialize(_run(_with_plan)) == baseline


def test_uninstalled_coupling_fields_stay_zero():
    """The per-channel coupling attributes exist but stay at their
    float-identity-preserving defaults when no plane is installed."""
    from repro.topologies import build_star

    vini, _exp = build_star(3, bandwidth=20e6, seed=9, realtime=False)
    vini.run(until=1.0)
    for link in vini.links.values():
        for channel in link._channels.values():
            assert channel.fluid_bps == 0.0
            assert channel.fluid_drops == 0
