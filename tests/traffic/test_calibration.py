"""Differential calibration: fluid rates vs. packet-level iperf.

The fluid model's job is to predict what the packet engine would have
measured, at a fraction of the cost. These tests run the *same*
scenario both ways on the dumbbell (two senders, one 10 Mb/s
bottleneck, 28 ms path RTT) and hold the models to each other:

* window-limited (16 KB window, one flow): iperf's TCP must land
  within 15% of the fluid ``window*8/RTT`` cap — the fluid side is the
  analytic ceiling, so the packet side sits just below it;
* bottleneck-limited (two big-window flows): aggregate packet
  throughput within 10% of the fluid max-min allocation, and the
  per-flow split within 15% of fair.

Tolerances are deliberately honest: measured gaps today are ~9% and
~2% (slow-start, header overhead, ack clocking — dynamics the fluid
model declares out of scope).
"""

import pytest

from repro.tools import IperfTCPClient, IperfTCPServer
from repro.topologies import build_dumbbell
from repro.traffic import FluidTrafficPlane

BOTTLENECK = 10e6
RTT = 2 * (0.002 + 0.01 + 0.002)
DURATION = 10.0


def packet_throughputs(window, pairs):
    vini, _exp = build_dumbbell(pairs=2, bottleneck=BOTTLENECK,
                                seed=3, realtime=False)
    clients = []
    for i in pairs:
        sender = vini.nodes[f"s{i}"]
        receiver = vini.nodes[f"r{i}"]
        server = IperfTCPServer(receiver, window=window)
        clients.append(
            IperfTCPClient(
                sender, receiver.address, duration=DURATION,
                window=window, server=server,
            ).start()
        )
    vini.run(until=DURATION + 2.0)
    return [client.result().throughput_bps for client in clients]


def fluid_rates(window, pairs):
    vini, _exp = build_dumbbell(pairs=2, bottleneck=BOTTLENECK,
                                seed=3, realtime=False)
    plane = FluidTrafficPlane(vini)
    flows = [
        plane.add_flow(f"s{i}", f"r{i}", window_bytes=window) for i in pairs
    ]
    vini.run(until=1.0)
    return [flow.rate_bps for flow in flows]


def test_window_limited_flow_matches_packet_iperf():
    (packet,) = packet_throughputs(window=16 * 1024, pairs=[0])
    (fluid,) = fluid_rates(window=16 * 1024, pairs=[0])
    # The analytic cap itself.
    assert fluid == pytest.approx(16 * 1024 * 8 / RTT)
    # And the packet engine agrees to within 15%, from below.
    assert packet == pytest.approx(fluid, rel=0.15)
    assert packet < fluid


def test_bottleneck_limited_flows_match_packet_iperf():
    window = 256 * 1024  # far above the bandwidth-delay product
    packet = packet_throughputs(window=window, pairs=[0, 1])
    fluid = fluid_rates(window=window, pairs=[0, 1])
    # Fluid: the max-min split of the usable bottleneck.
    for rate in fluid:
        assert rate == pytest.approx(BOTTLENECK * 0.98 / 2)
    # Aggregates within 10%.
    assert sum(packet) == pytest.approx(sum(fluid), rel=0.10)
    # And the packet engine shares fairly too (within 15% per flow).
    for rate in packet:
        assert rate == pytest.approx(sum(packet) / 2, rel=0.15)
