"""The examples must stay runnable: compile all, smoke-run the quick ones."""

import os
import py_compile
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
ALL_EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_examples_exist():
    assert len(ALL_EXAMPLES) >= 3  # the deliverable floor
    assert "quickstart.py" in ALL_EXAMPLES


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    py_compile.compile(os.path.join(EXAMPLES_DIR, name), doraise=True)


@pytest.mark.parametrize(
    "name", ["quickstart.py", "life_of_a_packet.py", "bgp_multiplexer.py"]
)
def test_fast_examples_run_to_completion(name, capsys):
    runpy.run_path(os.path.join(EXAMPLES_DIR, name), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # each example narrates its result
