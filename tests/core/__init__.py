"""Test package."""
