"""Integration tests for virtual networks over the physical substrate."""

import pytest

from repro.core import VINI, Experiment
from repro.net.addr import ip
from repro.net.packet import (
    ICMP_ECHO_REQUEST,
    ICMPHeader,
    IPv4Header,
    OpaquePayload,
    Packet,
    PROTO_ICMP,
)


def build_line(n=3, realtime=True):
    """n physical nodes in a line, one virtual node on each, virtual
    topology mirroring the physical line."""
    vini = VINI(seed=7)
    names = [f"p{i}" for i in range(n)]
    for name in names:
        vini.add_node(name)
    for a, b in zip(names, names[1:]):
        vini.connect(a, b, bandwidth=1e9, delay=0.002)
    vini.install_underlay_routes()
    exp = Experiment(vini, "iias", realtime=realtime)
    for i, name in enumerate(names):
        exp.add_node(f"v{i}", name)
    for i in range(n - 1):
        exp.connect(f"v{i}", f"v{i + 1}")
    exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
    return vini, exp


def overlay_udp(exp, src_name, dst_name, port=7000, payload=100):
    """Send a UDP datagram across the overlay; returns received list."""
    vini = exp.vini
    src = exp.network.nodes[src_name]
    dst = exp.network.nodes[dst_name]
    received = []
    app_dst = dst.sliver.create_process("app")
    sock_dst = dst.phys_node.udp_socket(
        app_dst, port=port, local_addr=dst.tap_addr
    )
    sock_dst.on_receive = lambda pkt, addr, sport: received.append(
        (pkt.payload.size, str(addr))
    )
    app_src = src.sliver.create_process("app")
    sock_src = src.phys_node.udp_socket(
        app_src, port=port + 1, local_addr=src.tap_addr
    )
    sock_src.sendto(payload, dst.tap_addr, port)
    return received


class TestOverlayConvergence:
    def test_ospf_adjacencies_form_over_tunnels(self):
        vini, exp = build_line(3)
        exp.run(until=30.0)
        v1 = exp.network.nodes["v1"]
        states = v1.xorp.ospf.neighbor_states()
        assert sorted(states.values()) == ["Full", "Full"]

    def test_fib_programmed_with_remote_taps(self):
        vini, exp = build_line(3)
        exp.run(until=30.0)
        v0 = exp.network.nodes["v0"]
        v2 = exp.network.nodes["v2"]
        entry = v0.lookup._lookup(v2.tap_addr)
        assert entry is not None
        gw, port = entry
        assert port == 0  # forward via encap

    def test_udp_delivery_across_overlay(self):
        vini, exp = build_line(3)
        exp.run(until=30.0)
        received = overlay_udp(exp, "v0", "v2")
        vini.run(until=35.0)
        assert len(received) == 1
        size, src_addr = received[0]
        assert size == 100
        assert src_addr == str(exp.network.nodes["v0"].tap_addr)

    def test_overlay_icmp_echo_roundtrip(self):
        vini, exp = build_line(3)
        exp.run(until=30.0)
        v0 = exp.network.nodes["v0"]
        v2 = exp.network.nodes["v2"]
        replies = []
        v0.phys_node.icmp_register(
            ident=9, callback=lambda pkt: replies.append(vini.sim.now),
            sliver_name=exp.slice.name,
        )
        request = Packet(
            headers=[
                IPv4Header(v0.tap_addr, v2.tap_addr, PROTO_ICMP),
                ICMPHeader(ICMP_ECHO_REQUEST, ident=9, seq=1),
            ],
            payload=OpaquePayload(56),
        )
        v0.phys_node.ip_output(request, sliver=v0.sliver)
        vini.run(until=35.0)
        assert len(replies) == 1

    def test_ttl_expiry_generates_overlay_icmp_error(self):
        vini, exp = build_line(3)
        exp.run(until=30.0)
        v0 = exp.network.nodes["v0"]
        v1 = exp.network.nodes["v1"]
        v2 = exp.network.nodes["v2"]
        errors = []
        v0.phys_node.icmp_errors_to(lambda pkt: errors.append(str(pkt.ip.src)))
        # ttl=2: the local Click is virtual hop 1, v1's Click is hop 2.
        probe = Packet(
            headers=[
                IPv4Header(v0.tap_addr, v2.tap_addr, PROTO_ICMP, ttl=2),
                ICMPHeader(ICMP_ECHO_REQUEST, ident=1, seq=1),
            ],
            payload=OpaquePayload(56),
        )
        v0.phys_node.ip_output(probe, sliver=v0.sliver)
        vini.run(until=35.0)
        # The error comes from the intermediate *virtual* node's address.
        assert errors == [str(v1.tap_addr)]


class TestVirtualLinkFailure:
    def build_square(self):
        vini = VINI(seed=8)
        for name in ("pa", "pb", "pc", "pd"):
            vini.add_node(name)
        vini.connect("pa", "pb", delay=0.002)
        vini.connect("pb", "pd", delay=0.002)
        vini.connect("pa", "pc", delay=0.002)
        vini.connect("pc", "pd", delay=0.002)
        vini.install_underlay_routes()
        exp = Experiment(vini, "iias", realtime=True)
        for v, p in (("a", "pa"), ("b", "pb"), ("c", "pc"), ("d", "pd")):
            exp.add_node(v, p)
        exp.connect("a", "b")
        exp.connect("b", "d")
        exp.connect("a", "c", cost=3)
        exp.connect("c", "d", cost=3)
        exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
        return vini, exp

    def test_click_level_failure_reroutes(self):
        vini, exp = self.build_square()
        exp.run(until=30.0)
        a = exp.network.nodes["a"]
        d = exp.network.nodes["d"]
        gw_before, _ = a.lookup._lookup(d.tap_addr)
        assert gw_before == a.interfaces["to_b"].peer
        exp.network.fail_link("a", "b")
        vini.run(until=60.0)
        found = a.lookup._lookup(d.tap_addr)
        assert found is not None
        assert found[0] == a.interfaces["to_c"].peer

    def test_recovery_restores_path(self):
        vini, exp = self.build_square()
        exp.run(until=30.0)
        exp.network.fail_link("a", "b")
        vini.run(until=60.0)
        exp.network.recover_link("a", "b")
        vini.run(until=100.0)
        a = exp.network.nodes["a"]
        d = exp.network.nodes["d"]
        gw, _ = a.lookup._lookup(d.tap_addr)
        assert gw == a.interfaces["to_b"].peer

    def test_experiment_timetable(self):
        vini, exp = self.build_square()
        exp.fail_link_at(10.0, "a", "b")
        exp.recover_link_at(34.0, "a", "b")
        assert exp.timetable() == [
            (10.0, "fail a=b"),
            (34.0, "recover a=b"),
        ]

    def test_physical_failure_breaks_virtual_link(self):
        """Fate sharing: the tunnel rides the physical link 1:1."""
        vini, exp = self.build_square()
        exp.run(until=30.0)
        vini.link_between("pa", "pb").fail()
        vini.run(until=60.0)
        a = exp.network.nodes["a"]
        d = exp.network.nodes["d"]
        found = a.lookup._lookup(d.tap_addr)
        assert found[0] == a.interfaces["to_c"].peer

    def test_upcalls_accelerate_physical_failure_detection(self):
        vini, exp = self.build_square()
        exp.enable_upcalls()
        exp.run(until=30.0)
        vini.link_between("pa", "pb").fail()
        # Well under the 6 s dead interval.
        vini.run(until=31.5)
        a = exp.network.nodes["a"]
        d = exp.network.nodes["d"]
        found = a.lookup._lookup(d.tap_addr)
        assert found is not None
        assert found[0] == a.interfaces["to_c"].peer
        assert exp.upcalls.upcalls_delivered >= 1
        assert vini.sim.trace.count("upcall", up=False) >= 1


class TestSimultaneousExperiments:
    def test_two_slices_same_substrate_different_topologies(self):
        vini = VINI(seed=9)
        for name in ("p0", "p1", "p2"):
            vini.add_node(name)
        vini.connect("p0", "p1", delay=0.002)
        vini.connect("p1", "p2", delay=0.002)
        vini.install_underlay_routes()
        exp1 = Experiment(vini, "one", realtime=True)
        exp2 = Experiment(vini, "two", realtime=True)
        for exp in (exp1, exp2):
            for i in range(3):
                exp.add_node(f"v{i}", f"p{i}")
        # exp1 is a line; exp2 adds a direct v0--v2 virtual link that
        # does not exist physically.
        exp1.connect("v0", "v1")
        exp1.connect("v1", "v2")
        exp2.connect("v0", "v1")
        exp2.connect("v1", "v2")
        exp2.connect("v0", "v2", map_physical=False)
        exp1.configure_ospf(hello_interval=2.0, dead_interval=6.0)
        exp2.configure_ospf(hello_interval=2.0, dead_interval=6.0)
        exp1.start()
        exp2.start()
        vini.run(until=40.0)
        # exp2's v0 reaches v2 in one hop; exp1's v0 needs two.
        v0_1 = exp1.network.nodes["v0"]
        v0_2 = exp2.network.nodes["v0"]
        v2_1 = exp1.network.nodes["v2"]
        v2_2 = exp2.network.nodes["v2"]
        r1 = v0_1.xorp.rib.lookup(v2_1.tap_addr)
        r2 = v0_2.xorp.rib.lookup(v2_2.tap_addr)
        assert r1.metric == pytest.approx(2.0)
        assert r2.metric == pytest.approx(1.0)

    def test_slices_use_distinct_tunnel_ports(self):
        vini = VINI(seed=10)
        vini.add_node("p0")
        vini.add_node("p1")
        vini.connect("p0", "p1", delay=0.002)
        vini.install_underlay_routes()
        exp1 = Experiment(vini, "one")
        exp2 = Experiment(vini, "two")
        for exp in (exp1, exp2):
            exp.add_node("a", "p0")
            exp.add_node("b", "p1")
            exp.connect("a", "b")
            exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
        exp1.start()
        exp2.start()  # would raise PortConflictError if ports collided
        vini.run(until=20.0)
        assert exp1.network.nodes["a"].xorp.ospf.neighbor_states()
        assert exp2.network.nodes["a"].xorp.ospf.neighbor_states()
