"""Tests for the declarative experiment specification (Section 6.2)."""

import pytest

from repro.core import VINI
from repro.core.spec import SpecError, build_experiment, experiment_spec
from repro.net.addr import ip

SQUARE = {
    "name": "square",
    "seed": 5,
    "slice": {"cpu_reservation": 0.25, "realtime": True},
    "physical": {
        "nodes": ["pa", "pb", "pc", "pd"],
        "links": [
            {"a": "pa", "b": "pb", "delay": 0.005},
            {"a": "pb", "b": "pd", "delay": 0.005},
            {"a": "pa", "b": "pc", "delay": 0.005},
            {"a": "pc", "b": "pd", "delay": 0.005},
        ],
    },
    "topology": {
        "nodes": {"a": "pa", "b": "pb", "c": "pc", "d": "pd"},
        "links": [
            {"a": "a", "b": "b"},
            {"a": "b", "b": "d"},
            {"a": "a", "b": "c", "cost": 3},
            {"a": "c", "b": "d", "cost": 3},
        ],
    },
    "routing": {"protocol": "ospf", "hello_interval": 2.0, "dead_interval": 6.0},
    "events": [
        {"time": 30.0, "action": "fail_link", "args": ["a", "b"]},
        {"time": 60.0, "action": "recover_link", "args": ["a", "b"]},
    ],
}


def test_build_creates_substrate_and_topology():
    vini, exp = build_experiment(SQUARE)
    assert set(vini.nodes) == {"pa", "pb", "pc", "pd"}
    assert set(exp.network.nodes) == {"a", "b", "c", "d"}
    assert len(exp.network.links) == 4
    assert exp.slice.cpu_reservation == 0.25
    assert exp.slice.realtime


def test_spec_events_drive_failure_and_recovery():
    vini, exp = build_experiment(SQUARE)
    exp.run(until=25.0)
    a = exp.network.nodes["a"]
    d = exp.network.nodes["d"]
    route_before = a.xorp.rib.lookup(d.tap_addr)
    assert route_before.ifname == "to_b"
    vini.run(until=55.0)  # after the failure event at t=30
    route_during = a.xorp.rib.lookup(d.tap_addr)
    assert route_during.ifname == "to_c"
    vini.run(until=95.0)  # after recovery at t=60
    assert a.xorp.rib.lookup(d.tap_addr).ifname == "to_b"


def test_roundtrip_spec_rebuilds_equivalent_experiment():
    vini, exp = build_experiment(SQUARE)
    spec2 = experiment_spec(exp)
    assert spec2["topology"]["nodes"] == SQUARE["topology"]["nodes"]
    assert len(spec2["topology"]["links"]) == 4
    assert spec2["routing"]["hello_interval"] == 2.0
    assert {(e["time"], e["action"]) for e in spec2["events"]} == {
        (30.0, "fail_link"),
        (60.0, "recover_link"),
    }
    # And it builds again.
    vini2, exp2 = build_experiment(spec2)
    assert set(exp2.network.nodes) == set(exp.network.nodes)


def test_existing_vini_can_be_supplied():
    vini = VINI(seed=1)
    vini.add_node("pa")
    vini.add_node("pb")
    vini.connect("pa", "pb", delay=0.002)
    vini.install_underlay_routes()
    spec = {
        "name": "mini",
        "topology": {"nodes": {"x": "pa", "y": "pb"},
                     "links": [{"a": "x", "b": "y"}]},
        "routing": {"protocol": "ospf", "hello_interval": 2.0,
                    "dead_interval": 6.0},
    }
    vini_out, exp = build_experiment(spec, vini=vini)
    assert vini_out is vini
    exp.run(until=20.0)
    x = exp.network.nodes["x"]
    y = exp.network.nodes["y"]
    assert x.xorp.rib.lookup(y.tap_addr) is not None


def test_rip_protocol_choice():
    spec = dict(SQUARE, routing={"protocol": "rip", "update_interval": 5.0,
                                 "timeout": 20.0}, events=[])
    vini, exp = build_experiment(spec)
    exp.run(until=60.0)
    a = exp.network.nodes["a"]
    d = exp.network.nodes["d"]
    route = a.xorp.rib.lookup(ip(d.interfaces["to_b"].address))
    assert route is not None and route.protocol in ("rip", "connected", "ospf")


def test_errors_for_malformed_specs():
    with pytest.raises(SpecError):
        build_experiment({"topology": {}})  # no physical, no vini
    with pytest.raises(SpecError):
        build_experiment({"physical": {"nodes": ["a"], "links": []}})  # no topology
    bad_routing = dict(SQUARE, routing={"protocol": "isis"})
    with pytest.raises(SpecError):
        build_experiment(bad_routing)
    bad_event = dict(SQUARE, events=[{"time": 1, "action": "explode"}])
    with pytest.raises(SpecError):
        build_experiment(bad_event)


def test_spec_is_json_serializable():
    import json

    vini, exp = build_experiment(SQUARE)
    text = json.dumps(experiment_spec(exp))
    assert "square" in text
