"""Property tests for NAPT: translation is a bijection per flow."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import NAPT
from repro.net.packet import (
    IPv4Header,
    OpaquePayload,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)
from repro.phys.node import PhysicalNode
from repro.phys.vserver import Slice
from repro.sim import Simulator
from tests.click.conftest import Sink


def build_napt():
    sim = Simulator(seed=71)
    node = PhysicalNode(sim, "egress")
    node.add_interface("eth0").configure("198.51.100.1", 24)
    sliver = node.create_sliver(Slice("exp"))
    process = sliver.create_process("click", realtime=True)
    from repro.click import ClickRouter

    router = ClickRouter(node, process)
    napt = router.add("napt", NAPT(public_addr="198.51.100.1"))
    out_sink, in_sink = Sink(), Sink()
    router.add("out", out_sink)
    router.add("in", in_sink)
    router.connect("napt", "out", out_port=0)
    router.connect("napt", "in", out_port=1)
    return napt, out_sink, in_sink


flows = st.tuples(
    st.sampled_from([PROTO_TCP, PROTO_UDP]),
    st.integers(min_value=1, max_value=65535),  # private sport
    st.integers(min_value=0, max_value=255),  # private host octet
    st.integers(min_value=1, max_value=65535),  # remote dport
)


def make_outbound(proto, sport, host_octet, dport, remote="203.0.113.7"):
    transport = (
        TCPHeader(sport, dport) if proto == PROTO_TCP else UDPHeader(sport, dport)
    )
    return Packet(
        headers=[IPv4Header(f"10.1.87.{host_octet}", remote, proto), transport],
        payload=OpaquePayload(64),
    )


@settings(max_examples=30, deadline=None)
@given(st.lists(flows, min_size=1, max_size=25, unique=True))
def test_distinct_flows_get_distinct_public_ports(flow_list):
    napt, out_sink, in_sink = build_napt()
    seen_ports = {}
    for proto, sport, host, dport in flow_list:
        napt.push(0, make_outbound(proto, sport, host, dport))
    assert len(out_sink.packets) == len(flow_list)
    for packet, flow in zip(out_sink.packets, flow_list):
        proto = flow[0]
        transport = packet.tcp if proto == PROTO_TCP else packet.udp
        key = (proto, transport.sport)
        assert key not in seen_ports, "public (proto, port) collision"
        seen_ports[key] = flow


@settings(max_examples=30, deadline=None)
@given(st.lists(flows, min_size=1, max_size=15, unique=True))
def test_return_translation_inverts_outbound(flow_list):
    napt, out_sink, in_sink = build_napt()
    for proto, sport, host, dport in flow_list:
        napt.push(0, make_outbound(proto, sport, host, dport))
    # Build replies from the remote and push them back inbound.
    for packet, flow in zip(list(out_sink.packets), flow_list):
        proto, sport, host, dport = flow
        public_port = (packet.tcp or packet.udp).sport
        transport = (
            TCPHeader(dport, public_port)
            if proto == PROTO_TCP
            else UDPHeader(dport, public_port)
        )
        reply = Packet(
            headers=[IPv4Header("203.0.113.7", "198.51.100.1", proto), transport],
            payload=OpaquePayload(64),
        )
        napt.push(1, reply)
    assert len(in_sink.packets) == len(flow_list)
    for packet, flow in zip(in_sink.packets, flow_list):
        proto, sport, host, dport = flow
        assert str(packet.ip.dst) == f"10.1.87.{host}"
        assert (packet.tcp or packet.udp).dport == sport
