"""Unit tests for the Click element library."""

import pytest

from repro.click import (
    CheckIPHeader,
    Counter,
    DecIPTTL,
    Discard,
    EncapTable,
    IPClassifier,
    LinearIPLookup,
    LossElement,
    Queue,
    RadixIPLookup,
    Shaper,
    Tee,
)
from repro.net.packet import (
    IPv4Header,
    OpaquePayload,
    Packet,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)
from tests.click.conftest import Sink


def make_packet(dst="10.1.2.3", proto=PROTO_UDP, ttl=64, sport=5000, dport=6000, size=100):
    headers = [IPv4Header("10.1.1.1", dst, proto, ttl=ttl)]
    if proto == PROTO_UDP:
        headers.append(UDPHeader(sport, dport))
    elif proto == PROTO_TCP:
        headers.append(TCPHeader(sport, dport))
    return Packet(headers=headers, payload=OpaquePayload(size))


class TestBasicElements:
    def test_counter_counts_and_passes(self, world):
        sim, node, sliver, router = world
        counter = router.add("c", Counter())
        sink = router.add("s", Sink())
        router.connect("c", "s")
        counter.push(0, make_packet(size=100))
        counter.push(0, make_packet(size=200))
        assert counter.packets == 2
        assert counter.bytes == (128 + 228)
        assert len(sink.packets) == 2
        counter.reset()
        assert counter.packets == 0

    def test_discard_counts(self, world):
        sim, node, sliver, router = world
        discard = router.add("d", Discard())
        discard.push(0, make_packet())
        assert discard.packets == 1

    def test_tee_duplicates(self, world):
        sim, node, sliver, router = world
        tee = router.add("t", Tee(3))
        sinks = [router.add(f"s{i}", Sink()) for i in range(3)]
        for i in range(3):
            router.connect("t", f"s{i}", out_port=i)
        original = make_packet()
        tee.push(0, original)
        assert all(len(s.packets) == 1 for s in sinks)
        # Port 0 keeps the original; others are copies.
        assert sinks[0].packets[0] is original
        assert sinks[1].packets[0] is not original
        assert sinks[1].packets[0].wire_len == original.wire_len

    def test_unconnected_port_drops_with_trace(self, world):
        sim, node, sliver, router = world
        counter = router.add("c", Counter())
        counter.push(0, make_packet())
        assert router.drops == 1
        assert sim.trace.count("click_drop") == 1


class TestCheckIPAndTTL:
    def test_checkip_passes_valid(self, world):
        sim, node, sliver, router = world
        check = router.add("check", CheckIPHeader())
        sink = router.add("sink", Sink())
        router.connect("check", "sink")
        check.push(0, make_packet())
        assert len(sink.packets) == 1

    def test_checkip_drops_non_ip(self, world):
        sim, node, sliver, router = world
        check = router.add("check", CheckIPHeader())
        sink = router.add("sink", Sink())
        router.connect("check", "sink")
        check.push(0, Packet(payload=OpaquePayload(10)))
        assert check.drops == 1
        assert sink.packets == []

    def test_decttl_decrements(self, world):
        sim, node, sliver, router = world
        dec = router.add("dec", DecIPTTL())
        sink = router.add("sink", Sink())
        router.connect("dec", "sink")
        pkt = make_packet(ttl=10)
        dec.push(0, pkt)
        assert pkt.ip.ttl == 9
        assert len(sink.packets) == 1

    def test_decttl_expires_to_port1(self, world):
        sim, node, sliver, router = world
        dec = router.add("dec", DecIPTTL())
        ok, expired = router.add("ok", Sink()), router.add("exp", Sink())
        router.connect("dec", "ok", out_port=0)
        router.connect("dec", "exp", out_port=1)
        dec.push(0, make_packet(ttl=1))
        assert dec.expired == 1
        assert len(expired.packets) == 1
        assert ok.packets == []

    def test_decttl_expired_dropped_without_port1(self, world):
        sim, node, sliver, router = world
        dec = router.add("dec", DecIPTTL())
        ok = router.add("ok", Sink())
        router.connect("dec", "ok", out_port=0)
        dec.push(0, make_packet(ttl=0))
        assert router.drops == 1


@pytest.mark.parametrize("lookup_cls", [RadixIPLookup, LinearIPLookup])
class TestLookup:
    def test_longest_match_and_annotation(self, world, lookup_cls):
        sim, node, sliver, router = world
        lookup = router.add("rt", lookup_cls(n_outputs=2))
        s0, s1 = router.add("s0", Sink()), router.add("s1", Sink())
        router.connect("rt", "s0", out_port=0)
        router.connect("rt", "s1", out_port=1)
        lookup.add_route("10.0.0.0/8", "10.9.9.1", 0)
        lookup.add_route("10.1.0.0/16", "10.9.9.2", 1)
        lookup.push(0, make_packet(dst="10.1.2.3"))
        lookup.push(0, make_packet(dst="10.200.0.1"))
        assert str(s1.packets[0].meta["gw"]) == "10.9.9.2"
        assert str(s0.packets[0].meta["gw"]) == "10.9.9.1"

    def test_null_gw_uses_destination(self, world, lookup_cls):
        sim, node, sliver, router = world
        lookup = router.add("rt", lookup_cls())
        sink = router.add("s", Sink())
        router.connect("rt", "s")
        lookup.add_route("10.0.0.0/8", None, 0)
        lookup.push(0, make_packet(dst="10.4.5.6"))
        assert str(sink.packets[0].meta["gw"]) == "10.4.5.6"

    def test_miss_drops_by_default(self, world, lookup_cls):
        sim, node, sliver, router = world
        lookup = router.add("rt", lookup_cls())
        sink = router.add("s", Sink())
        router.connect("rt", "s")
        lookup.push(0, make_packet(dst="192.0.2.1"))
        assert lookup.misses == 1
        assert router.drops == 1

    def test_miss_to_no_route_port(self, world, lookup_cls):
        sim, node, sliver, router = world
        lookup = router.add("rt", lookup_cls(n_outputs=2, no_route_port=1))
        ok, miss = router.add("ok", Sink()), router.add("miss", Sink())
        router.connect("rt", "ok", out_port=0)
        router.connect("rt", "miss", out_port=1)
        lookup.push(0, make_packet(dst="192.0.2.1"))
        assert len(miss.packets) == 1

    def test_replace_and_remove(self, world, lookup_cls):
        sim, node, sliver, router = world
        lookup = router.add("rt", lookup_cls())
        sink = router.add("s", Sink())
        router.connect("rt", "s")
        lookup.add_route("10.0.0.0/8", "10.9.9.1", 0)
        lookup.add_route("10.0.0.0/8", "10.9.9.9", 0)
        assert len(lookup) == 1
        lookup.push(0, make_packet(dst="10.1.1.1"))
        assert str(sink.packets[0].meta["gw"]) == "10.9.9.9"
        lookup.remove_route("10.0.0.0/8")
        assert len(lookup) == 0
        with pytest.raises(KeyError):
            lookup.remove_route("10.0.0.0/8")

    def test_routes_listing_and_clear(self, world, lookup_cls):
        sim, node, sliver, router = world
        lookup = router.add("rt", lookup_cls())
        lookup.add_route("10.0.0.0/8", "10.9.9.1", 0)
        lookup.add_route("172.16.0.0/12", None, 0)
        assert len(lookup.routes()) == 2
        lookup.clear()
        assert len(lookup) == 0


class TestClassifier:
    def test_proto_and_port_patterns(self, world):
        sim, node, sliver, router = world
        classifier = router.add(
            "cl", IPClassifier("udp dport 6000", "proto tcp", "icmp", "-")
        )
        sinks = [router.add(f"s{i}", Sink()) for i in range(4)]
        for i in range(4):
            router.connect("cl", f"s{i}", out_port=i)
        classifier.push(0, make_packet(proto=PROTO_UDP, dport=6000))
        classifier.push(0, make_packet(proto=PROTO_TCP))
        classifier.push(0, make_packet(proto=PROTO_ICMP))
        classifier.push(0, make_packet(proto=PROTO_UDP, dport=7000))
        assert [len(s.packets) for s in sinks] == [1, 1, 1, 1]

    def test_dst_prefix_pattern(self, world):
        sim, node, sliver, router = world
        classifier = router.add("cl", IPClassifier("dst 10.0.0.0/8", "-"))
        inside, outside = router.add("in", Sink()), router.add("out", Sink())
        router.connect("cl", "in", out_port=0)
        router.connect("cl", "out", out_port=1)
        classifier.push(0, make_packet(dst="10.1.1.1"))
        classifier.push(0, make_packet(dst="192.0.2.1"))
        assert len(inside.packets) == 1
        assert len(outside.packets) == 1

    def test_combined_clauses(self, world):
        sim, node, sliver, router = world
        classifier = router.add(
            "cl", IPClassifier("proto udp dst 10.0.0.0/8", "-")
        )
        match, rest = router.add("m", Sink()), router.add("r", Sink())
        router.connect("cl", "m", out_port=0)
        router.connect("cl", "r", out_port=1)
        classifier.push(0, make_packet(proto=PROTO_UDP, dst="10.1.1.1"))
        classifier.push(0, make_packet(proto=PROTO_TCP, dst="10.1.1.1"))
        assert len(match.packets) == 1
        assert len(rest.packets) == 1

    def test_unmatched_dropped(self, world):
        sim, node, sliver, router = world
        classifier = router.add("cl", IPClassifier("proto tcp"))
        sink = router.add("s", Sink())
        router.connect("cl", "s")
        classifier.push(0, make_packet(proto=PROTO_UDP))
        assert classifier.unmatched == 1

    def test_bad_pattern_rejected(self):
        with pytest.raises(ValueError):
            IPClassifier("bogus nonsense")
        with pytest.raises(ValueError):
            IPClassifier()


class TestLoss:
    def test_fail_blackholes(self, world):
        sim, node, sliver, router = world
        loss = router.add("loss", LossElement())
        sink = router.add("s", Sink())
        router.connect("loss", "s")
        loss.push(0, make_packet())
        loss.fail()
        loss.push(0, make_packet())
        loss.push(0, make_packet())
        loss.recover()
        loss.push(0, make_packet())
        assert len(sink.packets) == 2
        assert loss.dropped == 2

    def test_probabilistic_loss(self, world):
        sim, node, sliver, router = world
        loss = router.add("loss", LossElement(drop_prob=0.5))
        sink = router.add("s", Sink())
        router.connect("loss", "s")
        for _ in range(1000):
            loss.push(0, make_packet())
        assert 350 < len(sink.packets) < 650

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            LossElement(drop_prob=1.5)


class TestQueueShaper:
    def test_queue_fifo_and_overflow(self, world):
        sim, node, sliver, router = world
        queue = router.add("q", Queue(capacity=2))
        first, second = make_packet(), make_packet()
        queue.push(0, first)
        queue.push(0, second)
        queue.push(0, make_packet())
        assert queue.drops == 1
        assert queue.pop() is first
        assert queue.pop() is second
        assert queue.pop() is None

    def test_shaper_paces_to_rate(self, world):
        sim, node, sliver, router = world
        shaper = router.add("sh", Shaper(rate=800_000, burst_bytes=128))
        sink = router.add("s", Sink())
        router.connect("sh", "s")
        arrival_times = []
        sink.push = lambda port, pkt: arrival_times.append(sim.now)
        for _ in range(5):
            shaper.push(0, make_packet(size=72))  # 100B wire
        sim.run()
        # 100 bytes at 800 kb/s = 1 ms spacing after the burst.
        gaps = [b - a for a, b in zip(arrival_times, arrival_times[1:])]
        assert all(gap == pytest.approx(0.001, rel=0.1) for gap in gaps[1:])

    def test_shaper_burst_passes_immediately(self, world):
        sim, node, sliver, router = world
        shaper = router.add("sh", Shaper(rate=8_000, burst_bytes=1000))
        sink = router.add("s", Sink())
        router.connect("sh", "s")
        shaper.push(0, make_packet(size=472))  # 500B <= burst
        assert len(sink.packets) == 1  # no simulation time needed

    def test_shaper_overflow_drops(self, world):
        sim, node, sliver, router = world
        shaper = router.add("sh", Shaper(rate=8_000, burst_bytes=100, queue_bytes=300))
        sink = router.add("s", Sink())
        router.connect("sh", "s")
        for _ in range(10):
            shaper.push(0, make_packet(size=100))
        assert shaper.drops > 0
        sim.run()

    def test_validation(self):
        with pytest.raises(ValueError):
            Queue(capacity=0)
        with pytest.raises(ValueError):
            Shaper(rate=0)

    def test_reconfiguration_invalidates_memos(self, world):
        # The per-length hot-path memos must not survive a parameter
        # change: rate/burst_bytes and the router cost params are
        # properties that rebuild or clear them on assignment.
        sim, node, sliver, router = world
        shaper = router.add("sh", Shaper(rate=8_000, burst_bytes=100))
        shaper._need(make_packet(size=100))
        assert shaper._need_cache
        shaper.burst_bytes = 50
        assert not shaper._need_cache
        assert shaper._burst_f == 50.0
        shaper.rate = 16_000
        assert shaper._rate_bytes == 2_000.0
        with pytest.raises(ValueError):
            shaper.rate = 0
        pkt = make_packet(size=100)
        baseline = router.per_packet_cost(pkt)
        assert router._cost_cache
        router.copy_cost_per_byte = 0.0
        assert not router._cost_cache
        assert router.per_packet_cost(pkt) < baseline
        router.syscall_cost = 0.0
        assert not router._cost_cache
        router.syscalls_per_packet = 7
        assert not router._cost_cache
        assert router.per_packet_cost(pkt) == 0.0


class TestEncapTable:
    def test_maps_gw_to_port(self, world):
        sim, node, sliver, router = world
        encap = router.add("enc", EncapTable(n_outputs=2))
        s0, s1 = router.add("s0", Sink()), router.add("s1", Sink())
        router.connect("enc", "s0", out_port=0)
        router.connect("enc", "s1", out_port=1)
        encap.add_mapping("10.9.9.1", 0)
        encap.add_mapping("10.9.9.2", 1)
        pkt = make_packet()
        pkt.meta["gw"] = __import__("repro.net.addr", fromlist=["ip"]).ip("10.9.9.2")
        encap.push(0, pkt)
        assert len(s1.packets) == 1

    def test_missing_annotation_or_entry_drops(self, world):
        sim, node, sliver, router = world
        encap = router.add("enc", EncapTable(n_outputs=1))
        sink = router.add("s", Sink())
        router.connect("enc", "s")
        encap.push(0, make_packet())  # no gw annotation
        pkt = make_packet()
        from repro.net.addr import ip
        pkt.meta["gw"] = ip("10.8.8.8")
        encap.push(0, pkt)  # no mapping
        assert router.drops == 2

    def test_port_range_validated(self, world):
        sim, node, sliver, router = world
        encap = router.add("enc", EncapTable(n_outputs=1))
        with pytest.raises(ValueError):
            encap.add_mapping("10.9.9.1", 5)
