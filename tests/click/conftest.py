"""Shared fixtures for Click element tests."""

import pytest

from repro.click import ClickRouter, Element
from repro.phys.node import PhysicalNode, connect
from repro.phys.vserver import Slice
from repro.sim import Simulator


class Sink(Element):
    """Test sink that records pushed packets."""

    def __init__(self):
        super().__init__(n_outputs=0)
        self.packets = []

    def push(self, port, packet):
        self.packets.append(packet)


@pytest.fixture
def world():
    """One node with a Click router in a slice; returns helpers."""
    sim = Simulator(seed=11)
    node = PhysicalNode(sim, "n0")
    node.add_interface("eth0").configure("198.51.100.1", 24)
    sliver = node.create_sliver(Slice("exp"))
    process = sliver.create_process("click", realtime=True)
    router = ClickRouter(node, process)
    return sim, node, sliver, router


@pytest.fixture
def pair():
    """Two connected nodes, each with a Click router."""
    sim = Simulator(seed=12)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=1e9, delay=0.005, subnet="198.51.100.0/30")
    slice_ = Slice("exp")
    router_a = ClickRouter(a, a.create_sliver(slice_).create_process("click", realtime=True))
    router_b = ClickRouter(b, b.create_sliver(slice_).create_process("click", realtime=True))
    return sim, a, b, router_a, router_b
