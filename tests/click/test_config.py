"""Tests for the Click configuration-language parser."""

import pytest

from repro.click import ClickRouter, Counter, RadixIPLookup, Shaper, Tee, UDPTunnel
from repro.click.config import ClickConfigError, parse_click_config
from repro.net.addr import ip
from repro.net.packet import IPv4Header, OpaquePayload, Packet, PROTO_UDP
from repro.overlay import click_config
from repro.phys.node import PhysicalNode
from repro.phys.vserver import Slice
from repro.sim import Simulator
from tests.click.conftest import Sink


@pytest.fixture
def router():
    sim = Simulator(seed=61)
    node = PhysicalNode(sim, "n0")
    node.add_interface("eth0").configure("198.51.100.1", 24)
    sliver = node.create_sliver(Slice("exp"))
    process = sliver.create_process("click", realtime=True)
    return ClickRouter(node, process)


BASIC = """
// a comment
src :: Counter();
cls :: IPClassifier(proto udp, -);
q :: Queue(50);
drop :: Discard();

src -> cls;
cls [0] -> [0] q;
cls [1] -> drop;
"""


def test_declarations_and_connections(router):
    parse_click_config(BASIC, router)
    assert isinstance(router["src"], Counter)
    assert router["cls"].outputs[0].target is router["q"]
    assert router["cls"].outputs[1].target is router["drop"]
    # Push a packet through to prove the wiring is live.
    pkt = Packet(
        headers=[IPv4Header("10.0.0.1", "10.0.0.2", PROTO_UDP)],
        payload=OpaquePayload(10),
    )
    router["src"].push(0, pkt)
    assert len(router["q"]) == 1


def test_chained_connections(router):
    parse_click_config(
        "a :: Counter(); b :: Counter(); c :: Discard();\na -> b -> c;\n",
        router,
    )
    assert router["a"].outputs[0].target is router["b"]
    assert router["b"].outputs[0].target is router["c"]


def test_lookup_with_routes(router):
    text = "rt :: RadixIPLookup(10.0.0.0/8 10.9.9.1 0, 0.0.0.0/0 - 0);"
    parse_click_config(text, router)
    lookup = router["rt"]
    assert isinstance(lookup, RadixIPLookup)
    assert len(lookup) == 2
    gw, port = lookup._lookup(ip("10.1.1.1"))
    assert str(gw) == "10.9.9.1"


def test_udptunnel_config(router):
    text = "tun :: UDPTunnel(198.51.100.2, 33001, LOCAL_PORT 33000);"
    parse_click_config(text, router)
    tunnel = router["tun"]
    assert isinstance(tunnel, UDPTunnel)
    assert str(tunnel.remote_addr) == "198.51.100.2"
    assert tunnel.local_port == 33000


def test_shaper_and_tee(router):
    parse_click_config(
        "sh :: Shaper(1000000bps, BURST 5000); t :: Tee(3);", router
    )
    assert isinstance(router["sh"], Shaper)
    assert router["sh"].rate == 1000000.0
    assert router["sh"].burst_bytes == 5000
    assert isinstance(router["t"], Tee)
    assert len(router["t"].outputs) == 3


def test_fromtap_resolves_from_context(router):
    sliver = router.node.slivers["exp"]
    tap = sliver.create_tap("10.7.0.1")
    parse_click_config("ft :: FromTap(tap0); d :: Discard(); ft -> d;",
                       router, context={"tap0": tap})
    assert router["ft"].tap is tap


def test_missing_context_device_raises(router):
    with pytest.raises(ClickConfigError):
        parse_click_config("ft :: FromTap(tap0);", router)


def test_unknown_class_raises(router):
    with pytest.raises(ClickConfigError):
        parse_click_config("x :: Warp9();", router)


def test_unknown_element_in_connection_raises(router):
    with pytest.raises(ClickConfigError):
        parse_click_config("a :: Counter();\na -> ghost;", router)


def test_garbage_statement_raises(router):
    with pytest.raises(ClickConfigError):
        parse_click_config("not a statement at all", router)


def test_roundtrip_generated_config():
    """click_config() output parses back into an equivalent graph."""
    from repro.core import VINI, Experiment

    vini = VINI(seed=62)
    vini.add_node("p0")
    vini.add_node("p1")
    vini.connect("p0", "p1", delay=0.002)
    vini.install_underlay_routes()
    exp = Experiment(vini, "iias", realtime=True)
    exp.add_node("a", "p0")
    exp.add_node("b", "p1")
    exp.connect("a", "b")
    exp.configure_ospf(hello_interval=2.0, dead_interval=6.0)
    exp.run(until=15.0)
    vnode = exp.network.nodes["a"]
    text = click_config(vnode)

    # Parse into a fresh router on a fresh node/slice.
    sim2 = Simulator(seed=63)
    node2 = PhysicalNode(sim2, "m0")
    node2.add_interface("eth0").configure("198.51.100.9", 24)
    sliver2 = node2.create_sliver(Slice("copy"))
    process2 = sliver2.create_process("click")
    tap2 = sliver2.create_tap("10.0.0.2")
    router2 = ClickRouter(node2, process2)
    parse_click_config(text, router2, context={"tap0": tap2})
    # Same element names and classes.
    assert set(router2.elements) == set(vnode.click.elements)
    for name, element in vnode.click.elements.items():
        assert type(router2[name]).__name__ == type(element).__name__
    # Same wiring.
    for name, element in vnode.click.elements.items():
        for index, port in enumerate(element.outputs):
            if port.target is None or not hasattr(port.target, "name"):
                continue
            if port.target.name not in router2.elements:
                continue
            mirrored = router2[name].outputs[index]
            assert mirrored.target is router2[port.target.name]
            assert mirrored.target_port == port.target_port
    # FIB contents carried over.
    assert len(router2["lookup"]) == len(vnode.lookup)
