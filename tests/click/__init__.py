"""Test package."""
