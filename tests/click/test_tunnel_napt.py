"""Tests for UDP tunnels across real (simulated) nodes and for NAPT."""

import pytest

from repro.click import NAPT, UDPTunnel
from repro.click.element import Element
from repro.net.addr import ip
from repro.net.packet import (
    IPv4Header,
    OpaquePayload,
    Packet,
    PROTO_TCP,
    PROTO_UDP,
    TCPHeader,
    UDPHeader,
)
from tests.click.conftest import Sink


def overlay_packet(src="10.1.1.1", dst="10.1.2.2", size=100):
    return Packet(
        headers=[IPv4Header(src, dst, PROTO_UDP), UDPHeader(4000, 4001)],
        payload=OpaquePayload(size),
    )


class TestUDPTunnel:
    def test_end_to_end_encap_decap(self, pair):
        sim, a, b, router_a, router_b = pair
        tun_a = router_a.add(
            "tun", UDPTunnel("198.51.100.2", remote_port=33001, local_port=33000)
        )
        tun_b = router_b.add(
            "tun", UDPTunnel("198.51.100.1", remote_port=33000, local_port=33001)
        )
        sink = router_b.add("sink", Sink())
        router_b.connect("tun", "sink")
        router_a.initialize()
        router_b.initialize()
        inner = overlay_packet()
        tun_a.push(0, inner)
        sim.run()
        assert len(sink.packets) == 1
        received = sink.packets[0]
        assert str(received.ip.dst) == "10.1.2.2"
        # Decapsulated: no outer headers remain.
        assert len(received.headers) == 2
        assert tun_a.tx_packets == 1
        assert tun_b.rx_packets == 1

    def test_tunnel_overhead_is_28_bytes(self, pair):
        sim, a, b, router_a, router_b = pair
        tun_a = router_a.add(
            "tun", UDPTunnel("198.51.100.2", remote_port=33001, local_port=33000)
        )
        router_a.initialize()
        inner = overlay_packet(size=100)
        tun_a.push(0, inner)
        sim.run()
        link = a.interfaces["eth0"].link
        stats = link.stats()
        assert stats["tx_bytes"] == inner.wire_len + 28

    def test_bidirectional(self, pair):
        sim, a, b, router_a, router_b = pair
        tun_a = router_a.add(
            "tun", UDPTunnel("198.51.100.2", remote_port=33001, local_port=33000)
        )
        tun_b = router_b.add(
            "tun", UDPTunnel("198.51.100.1", remote_port=33000, local_port=33001)
        )
        sink_a = router_a.add("sink", Sink())
        sink_b = router_b.add("sink", Sink())
        router_a.connect("tun", "sink")
        router_b.connect("tun", "sink")
        router_a.initialize()
        router_b.initialize()
        tun_a.push(0, overlay_packet(dst="10.1.2.2"))
        tun_b.push(0, overlay_packet(dst="10.1.1.1"))
        sim.run()
        assert len(sink_a.packets) == 1
        assert len(sink_b.packets) == 1

    def test_click_cpu_charged_per_tunnel_packet(self, pair):
        sim, a, b, router_a, router_b = pair
        tun_a = router_a.add(
            "tun", UDPTunnel("198.51.100.2", remote_port=33001, local_port=33000)
        )
        tun_b = router_b.add(
            "tun", UDPTunnel("198.51.100.1", remote_port=33000, local_port=33001)
        )
        router_b.add("sink", Sink())
        router_b.connect("tun", "sink")
        router_a.initialize()
        router_b.initialize()
        tun_a.push(0, overlay_packet())
        sim.run()
        # Receiving Click paid at least the syscall tax for the packet.
        assert router_b.process.cpu_used >= router_b.syscall_cost * router_b.syscalls_per_packet


class TestNAPT:
    def build(self, world):
        sim, node, sliver, router = world
        napt = router.add("napt", NAPT(public_addr="198.51.100.1"))
        out_sink, in_sink = router.add("out", Sink()), router.add("in", Sink())
        router.connect("napt", "out", out_port=0)
        router.connect("napt", "in", out_port=1)
        return sim, node, router, napt, out_sink, in_sink

    def test_outbound_rewrites_src_and_port(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        pkt = Packet(
            headers=[
                IPv4Header("10.1.87.2", "64.236.16.20", PROTO_TCP),
                TCPHeader(5555, 80),
            ],
            payload=OpaquePayload(100),
        )
        napt.push(0, pkt)
        (sent,) = out_sink.packets
        assert str(sent.ip.src) == "198.51.100.1"
        assert sent.tcp.sport >= 50000
        assert napt.translated_out == 1

    def test_return_traffic_translated_back(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        pkt = Packet(
            headers=[
                IPv4Header("10.1.87.2", "64.236.16.20", PROTO_TCP),
                TCPHeader(5555, 80),
            ],
            payload=OpaquePayload(100),
        )
        napt.push(0, pkt)
        public_port = out_sink.packets[0].tcp.sport
        reply = Packet(
            headers=[
                IPv4Header("64.236.16.20", "198.51.100.1", PROTO_TCP),
                TCPHeader(80, public_port),
            ],
            payload=OpaquePayload(500),
        )
        napt.push(1, reply)
        (back,) = in_sink.packets
        assert str(back.ip.dst) == "10.1.87.2"
        assert back.tcp.dport == 5555

    def test_same_flow_reuses_mapping(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        for _ in range(3):
            pkt = Packet(
                headers=[
                    IPv4Header("10.1.87.2", "64.236.16.20", PROTO_UDP),
                    UDPHeader(5555, 53),
                ],
                payload=OpaquePayload(60),
            )
            napt.push(0, pkt)
        ports = {p.udp.sport for p in out_sink.packets}
        assert len(ports) == 1
        assert napt.mappings() == 1

    def test_distinct_flows_get_distinct_ports(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        for sport in (5555, 5556):
            pkt = Packet(
                headers=[
                    IPv4Header("10.1.87.2", "64.236.16.20", PROTO_UDP),
                    UDPHeader(sport, 53),
                ],
                payload=OpaquePayload(60),
            )
            napt.push(0, pkt)
        ports = {p.udp.sport for p in out_sink.packets}
        assert len(ports) == 2

    def test_unknown_return_port_dropped(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        reply = Packet(
            headers=[
                IPv4Header("64.236.16.20", "198.51.100.1", PROTO_TCP),
                TCPHeader(80, 50099),
            ],
            payload=OpaquePayload(500),
        )
        napt.push(1, reply)
        assert in_sink.packets == []
        assert router.drops == 1

    def test_wrong_remote_blocked(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        pkt = Packet(
            headers=[
                IPv4Header("10.1.87.2", "64.236.16.20", PROTO_UDP),
                UDPHeader(5555, 53),
            ],
            payload=OpaquePayload(60),
        )
        napt.push(0, pkt)
        public_port = out_sink.packets[0].udp.sport
        spoofed = Packet(
            headers=[
                IPv4Header("203.0.113.9", "198.51.100.1", PROTO_UDP),
                UDPHeader(53, public_port),
            ],
            payload=OpaquePayload(60),
        )
        napt.push(1, spoofed)
        assert in_sink.packets == []

    def test_napt_ports_reserved_in_vnet(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        pkt = Packet(
            headers=[
                IPv4Header("10.1.87.2", "64.236.16.20", PROTO_UDP),
                UDPHeader(5555, 53),
            ],
            payload=OpaquePayload(60),
        )
        napt.push(0, pkt)
        public_port = out_sink.packets[0].udp.sport
        assert node.vnet.lookup(PROTO_UDP, public_port) is not None
        napt.close()
        assert node.vnet.lookup(PROTO_UDP, public_port) is None

    def test_flight_span_carried_across_napt(self, world):
        """A spanned packet keeps its flight identity through the NAT:
        the fresh return packet (span=None, the external host knows
        nothing of tracing) rejoins the same trace at ingress."""
        from repro.obs.spans import FlightRecorder

        sim, node, router, napt, out_sink, in_sink = self.build(world)
        recorder = FlightRecorder(sim).install()
        pkt = Packet(
            headers=[
                IPv4Header("10.1.87.2", "64.236.16.20", PROTO_TCP),
                TCPHeader(5555, 80),
            ],
            payload=OpaquePayload(100),
        )
        ctx = recorder.flight_begin(pkt, "web_fetch", node=node.name)
        napt.push(0, pkt)
        (sent,) = out_sink.packets
        assert sent.span is ctx  # uniqueify kept the shared context
        public_port = sent.tcp.sport
        reply = Packet(
            headers=[
                IPv4Header("64.236.16.20", "198.51.100.1", PROTO_TCP),
                TCPHeader(80, public_port),
            ],
            payload=OpaquePayload(500),
        )
        assert reply.span is None
        napt.push(1, reply)
        (back,) = in_sink.packets
        assert back.span is ctx  # reply leg rejoined the flight
        recorder.flight_end(back, node=node.name)
        (flight,) = recorder.flights()
        assert flight.status == "ok"
        # Both NAT traversals staged into the one flight.
        stages = [name for name, _node, _d in flight.stage_durations()]
        assert stages.count("click.napt") == 2

    def test_napt_spans_not_tracked_when_recorder_disabled(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        pkt = Packet(
            headers=[
                IPv4Header("10.1.87.2", "64.236.16.20", PROTO_TCP),
                TCPHeader(5555, 80),
            ],
            payload=OpaquePayload(100),
        )
        napt.push(0, pkt)
        assert napt._spans == {}  # no recorder: zero bookkeeping

    def test_icmp_not_translated(self, world):
        sim, node, router, napt, out_sink, in_sink = self.build(world)
        from repro.net.packet import ICMPHeader, PROTO_ICMP

        pkt = Packet(
            headers=[
                IPv4Header("10.1.87.2", "64.236.16.20", PROTO_ICMP),
                ICMPHeader(8),
            ],
            payload=OpaquePayload(56),
        )
        napt.push(0, pkt)
        assert out_sink.packets == []
        assert router.drops == 1
