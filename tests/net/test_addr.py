"""Unit tests for IPv4 addresses and prefixes."""

import pytest

from repro.net import IPv4Address, Prefix, ip, prefix
from repro.net.addr import DEFAULT_ROUTE, mask_of


class TestIPv4Address:
    def test_parse_and_str_roundtrip(self):
        addr = ip("198.32.154.250")
        assert str(addr) == "198.32.154.250"
        assert int(addr) == (198 << 24) | (32 << 16) | (154 << 8) | 250

    def test_from_int(self):
        assert str(ip(0x0A000001)) == "10.0.0.1"

    def test_invalid_strings(self):
        for bad in ("10.0.0", "10.0.0.0.1", "10.0.0.256", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                ip(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            IPv4Address(2**32)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_ordering_and_hash(self):
        a, b = ip("10.0.0.1"), ip("10.0.0.2")
        assert a < b
        assert len({a, ip("10.0.0.1")}) == 1

    def test_arithmetic_stays_typed(self):
        addr = ip("10.0.0.1") + 5
        assert isinstance(addr, IPv4Address)
        assert str(addr) == "10.0.0.6"
        assert ip("10.0.0.6") - ip("10.0.0.1") == 5

    def test_private_detection(self):
        assert ip("10.1.2.3").is_private
        assert ip("172.16.0.1").is_private
        assert ip("172.31.255.255").is_private
        assert not ip("172.32.0.1").is_private
        assert ip("192.168.1.1").is_private
        assert not ip("198.32.154.250").is_private

    def test_loopback_and_multicast(self):
        assert ip("127.0.0.1").is_loopback
        assert ip("224.0.0.5").is_multicast
        assert not ip("10.0.0.1").is_multicast

    def test_bytes_roundtrip(self):
        addr = ip("1.2.3.4")
        assert IPv4Address.from_bytes4(addr.to_bytes4()) == addr
        with pytest.raises(ValueError):
            IPv4Address.from_bytes4(b"abc")


class TestPrefix:
    def test_parse(self):
        pfx = prefix("10.1.0.0/16")
        assert str(pfx) == "10.1.0.0/16"
        assert pfx.plen == 16

    def test_parse_bare_address_is_host_route(self):
        assert prefix("10.0.0.1").plen == 32

    def test_network_is_masked(self):
        assert str(Prefix("10.1.2.3", 16)) == "10.1.0.0/16"

    def test_contains_address(self):
        pfx = prefix("10.0.0.0/8")
        assert ip("10.255.0.1") in pfx
        assert "10.0.0.1" in pfx
        assert ip("11.0.0.1") not in pfx

    def test_contains_prefix(self):
        assert prefix("10.1.0.0/16") in prefix("10.0.0.0/8")
        assert prefix("10.0.0.0/8") not in prefix("10.1.0.0/16")

    def test_overlaps(self):
        assert prefix("10.0.0.0/8").overlaps(prefix("10.1.0.0/16"))
        assert prefix("10.1.0.0/16").overlaps(prefix("10.0.0.0/8"))
        assert not prefix("10.0.0.0/8").overlaps(prefix("11.0.0.0/8"))

    def test_default_route_contains_everything(self):
        assert ip("1.2.3.4") in DEFAULT_ROUTE
        assert prefix("10.0.0.0/8") in DEFAULT_ROUTE

    def test_hosts_p30(self):
        hosts = list(prefix("10.1.1.0/30").hosts())
        assert [str(h) for h in hosts] == ["10.1.1.1", "10.1.1.2"]

    def test_hosts_p31_point_to_point(self):
        hosts = list(prefix("10.1.1.0/31").hosts())
        assert [str(h) for h in hosts] == ["10.1.1.0", "10.1.1.1"]

    def test_host_index(self):
        assert str(prefix("10.1.1.0/24").host(5)) == "10.1.1.5"
        with pytest.raises(ValueError):
            prefix("10.1.1.0/30").host(4)

    def test_subnets(self):
        subs = list(prefix("10.0.0.0/14").subnets(16))
        assert [str(s) for s in subs] == [
            "10.0.0.0/16",
            "10.1.0.0/16",
            "10.2.0.0/16",
            "10.3.0.0/16",
        ]
        with pytest.raises(ValueError):
            list(prefix("10.0.0.0/16").subnets(8))

    def test_broadcast_and_netmask(self):
        pfx = prefix("10.1.1.0/24")
        assert str(pfx.broadcast) == "10.1.1.255"
        assert str(pfx.netmask) == "255.255.255.0"

    def test_equality_and_hash(self):
        assert prefix("10.0.0.0/8") == Prefix("10.3.2.1", 8)
        assert len({prefix("10.0.0.0/8"), Prefix("10.1.0.0", 8)}) == 1

    def test_mask_of_bounds(self):
        assert mask_of(0) == 0
        assert mask_of(32) == 0xFFFFFFFF
        with pytest.raises(ValueError):
            mask_of(33)

    def test_malformed_prefix(self):
        with pytest.raises(ValueError):
            prefix("10.0.0.0/abc")
