"""Test package."""
