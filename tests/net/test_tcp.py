"""Tests for TCP Reno: handshake, transfer, loss recovery, close."""

import pytest

from repro.net.tcp import ESTABLISHED, MSS, TCPStack
from repro.phys.node import PhysicalNode, connect
from repro.phys.vserver import Slice
from repro.sim import Simulator


def make_pair(bandwidth=10_000_000, delay=0.010, queue_bytes=64 * 1024):
    sim = Simulator(seed=21)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=bandwidth, delay=delay,
            subnet="192.0.2.0/30", queue_bytes=queue_bytes)
    stack_a = TCPStack.of(a)
    stack_b = TCPStack.of(b)
    pa = a.create_sliver(Slice("sa")).create_process("app")
    pb = b.create_sliver(Slice("sb")).create_process("app")
    return sim, a, b, stack_a, stack_b, pa, pb


def test_handshake_establishes_both_sides():
    sim, a, b, sa, sb, pa, pb = make_pair()
    server_conns = []
    sb.listen(pb, 5001, on_accept=server_conns.append)
    connected = []
    conn = sa.connect(pa, "192.0.2.2", 5001)
    conn.on_connect = lambda: connected.append(sim.now)
    sim.run(until=1.0)
    assert conn.state == ESTABLISHED
    assert len(server_conns) == 1
    assert server_conns[0].state == ESTABLISHED
    assert connected and connected[0] >= 0.020  # at least one RTT


def test_bulk_transfer_delivers_all_bytes():
    sim, a, b, sa, sb, pa, pb = make_pair()
    received = []
    def on_accept(conn):
        conn.on_data = received.append
    sb.listen(pb, 5001, on_accept=on_accept)
    conn = sa.connect(pa, "192.0.2.2", 5001, rcvbuf=64 * 1024)
    total = 500_000
    remaining = [total]

    def pump():
        if remaining[0] > 0:
            remaining[0] -= conn.send(remaining[0])

    conn.on_connect = pump
    conn.on_writable = pump
    sim.run(until=30.0)
    assert sum(received) == total


def test_throughput_limited_by_receiver_window():
    """rwnd/RTT is the ceiling: 16 KB at 40 ms RTT is ~3.3 Mb/s."""
    sim, a, b, sa, sb, pa, pb = make_pair(bandwidth=100_000_000, delay=0.020)
    got = []
    def on_accept(conn):
        conn.on_data = got.append
    sb.listen(pb, 5001, on_accept=on_accept, rcvbuf=16 * 1024)
    conn = sa.connect(pa, "192.0.2.2", 5001)

    def keep_sending():
        conn.send(64 * 1024)
        sim.at(0.05, keep_sending)

    conn.on_connect = keep_sending
    sim.run(until=10.0)
    rate = sum(got) * 8 / 10.0
    ceiling = 16 * 1024 * 8 / 0.040
    assert rate <= ceiling * 1.1
    assert rate >= ceiling * 0.5


def test_fast_retransmit_recovers_from_single_loss():
    sim, a, b, sa, sb, pa, pb = make_pair(bandwidth=50_000_000, delay=0.005)
    got = []
    def on_accept(conn):
        conn.on_data = got.append
    sb.listen(pb, 5001, on_accept=on_accept, rcvbuf=128 * 1024)
    conn = sa.connect(pa, "192.0.2.2", 5001)
    total = 200_000
    conn.on_connect = lambda: conn.send(total)

    # Drop exactly one data segment in flight by failing the link
    # for an instant mid-transfer.
    link = a.interfaces["eth0"].link
    dropped = []

    def drop_once():
        original = link.transmit

        def lossy(sender, packet):
            if not dropped and packet.payload.tag == "data" and packet.payload.size == MSS:
                dropped.append(packet.uid)
                return False
            return original(sender, packet)

        link.transmit = lossy

    sim.at(0.05, drop_once)
    sim.run(until=20.0)
    assert dropped, "test did not drop anything"
    assert sum(got) == total
    assert conn.retransmits >= 1
    # Fast retransmit means few or no RTO firings.
    assert conn.timeouts <= 1


def test_outage_causes_timeout_backoff_and_recovery():
    """The Fig. 9 mechanism: stall during outage, slow-start restart."""
    sim, a, b, sa, sb, pa, pb = make_pair(bandwidth=10_000_000, delay=0.010)
    got = []
    times = []
    def on_accept(conn):
        conn.on_data = lambda n: (got.append(n), times.append(sim.now))
    sb.listen(pb, 5001, on_accept=on_accept, rcvbuf=32 * 1024)
    conn = sa.connect(pa, "192.0.2.2", 5001)

    def keep_sending():
        conn.send(32 * 1024)
        sim.at(0.05, keep_sending)

    conn.on_connect = keep_sending
    link = a.interfaces["eth0"].link
    sim.at(2.0, link.fail)
    sim.at(6.0, link.recover)
    sim.run(until=12.0)
    assert conn.timeouts >= 1
    # Delivery gap spans the outage.
    gaps = [t2 - t1 for t1, t2 in zip(times, times[1:])]
    assert max(gaps) > 3.5
    # And traffic resumed afterwards.
    assert times[-1] > 6.5
    # cwnd collapsed to one segment at some point (slow-start restart).
    assert conn.ssthresh < 32 * 1024


def test_graceful_close_tears_down_both_ends():
    sim, a, b, sa, sb, pa, pb = make_pair()
    server = []
    def on_accept(conn):
        server.append(conn)
        conn.on_close = lambda: conn.close()
    sb.listen(pb, 5001, on_accept=on_accept)
    conn = sa.connect(pa, "192.0.2.2", 5001)
    closed = []
    conn.on_close = lambda: closed.append(sim.now)

    def send_then_close():
        conn.send(10_000)
        conn.close()

    conn.on_connect = send_then_close
    sim.run(until=10.0)
    assert closed
    assert conn.state == "CLOSED"
    assert server[0].state == "CLOSED"


def test_listener_port_conflict():
    sim, a, b, sa, sb, pa, pb = make_pair()
    sb.listen(pb, 5001)
    with pytest.raises(ValueError):
        sb.listen(pb, 5001)


def test_syn_to_closed_port_ignored():
    sim, a, b, sa, sb, pa, pb = make_pair()
    conn = sa.connect(pa, "192.0.2.2", 4444)
    sim.run(until=2.0)
    assert conn.state == "SYN_SENT"
    assert sim.trace.count("tcp_drop", reason="no_connection") >= 1


def test_rtt_estimation_converges():
    sim, a, b, sa, sb, pa, pb = make_pair(delay=0.025)
    def on_accept(conn):
        conn.on_data = lambda n: None
    sb.listen(pb, 5001, on_accept=on_accept)
    conn = sa.connect(pa, "192.0.2.2", 5001)

    def keep_sending():
        conn.send(16 * 1024)
        sim.at(0.1, keep_sending)

    conn.on_connect = keep_sending
    sim.run(until=5.0)
    assert conn.srtt is not None
    assert conn.srtt == pytest.approx(0.050, rel=0.3)
    assert conn.rto >= 0.2  # clamped to Linux minimum


def test_send_before_established_buffers():
    sim, a, b, sa, sb, pa, pb = make_pair()
    got = []
    def on_accept(conn):
        conn.on_data = got.append
    sb.listen(pb, 5001, on_accept=on_accept)
    conn = sa.connect(pa, "192.0.2.2", 5001)
    accepted = conn.send(5000)  # before handshake completes
    assert accepted == 5000
    sim.run(until=5.0)
    assert sum(got) == 5000


def test_send_buffer_limit():
    sim, a, b, sa, sb, pa, pb = make_pair()
    conn = sa.connect(pa, "192.0.2.2", 5001)
    accepted = conn.send(10_000_000)
    assert accepted == conn.snd_buf_limit
