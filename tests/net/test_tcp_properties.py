"""Property tests for TCP: reliable, in-order, exactly-once delivery.

Whatever the loss pattern, a TCP transfer must deliver exactly the
bytes sent, in order, or stall trying — never duplicate or reorder.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.tcp import TCPStack
from repro.phys.node import PhysicalNode, connect
from repro.phys.vserver import Slice
from repro.sim import Simulator


def run_transfer(total, drop_seeds, drop_rate, bandwidth=20e6, delay=0.005):
    """Transfer ``total`` bytes over a lossy link; return delivered."""
    sim = Simulator(seed=99)
    a = PhysicalNode(sim, "a")
    b = PhysicalNode(sim, "b")
    connect(sim, a, b, bandwidth=bandwidth, delay=delay,
            subnet="192.0.2.0/30", queue_bytes=128 * 1024)
    stack_a, stack_b = TCPStack.of(a), TCPStack.of(b)
    pa = a.create_sliver(Slice("sa")).create_process("app")
    pb = b.create_sliver(Slice("sb")).create_process("app")
    delivered = []
    def on_accept(conn):
        conn.on_data = delivered.append
    stack_b.listen(pb, 5001, on_accept=on_accept, rcvbuf=64 * 1024)
    conn = stack_a.connect(pa, "192.0.2.2", 5001)
    remaining = [total]

    def pump():
        if remaining[0] > 0:
            remaining[0] -= conn.send(remaining[0])

    conn.on_connect = pump
    conn.on_writable = pump
    # Random loss on the link, both directions.
    import random

    rng = random.Random(drop_seeds)
    link = a.interfaces["eth0"].link
    original = link.transmit

    def lossy(sender, packet):
        if rng.random() < drop_rate:
            return False
        return original(sender, packet)

    link.transmit = lossy
    sim.run(until=120.0)
    return sum(delivered), conn


@settings(max_examples=10, deadline=None)
@given(
    total=st.integers(min_value=1, max_value=120_000),
    drop_seed=st.integers(min_value=0, max_value=10_000),
    drop_rate=st.sampled_from([0.0, 0.01, 0.05, 0.15]),
)
def test_all_bytes_delivered_exactly_once(total, drop_seed, drop_rate):
    delivered, conn = run_transfer(total, drop_seed, drop_rate)
    assert delivered == total
    # Receiver-side accounting agrees (no duplicates counted).
    assert conn.snd_una - 1 >= total  # all data acked (+1 for SYN)


def test_heavy_loss_still_completes_eventually():
    delivered, conn = run_transfer(30_000, drop_seeds=7, drop_rate=0.30)
    assert delivered == 30_000
    assert conn.retransmits > 0


def test_zero_loss_has_no_retransmits():
    delivered, conn = run_transfer(100_000, drop_seeds=1, drop_rate=0.0)
    assert delivered == 100_000
    assert conn.retransmits == 0
    assert conn.timeouts == 0
