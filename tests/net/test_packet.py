"""Unit tests for the packet model and wire serialization."""

import pytest

from repro.net import (
    EthernetHeader,
    ICMPHeader,
    IPv4Header,
    OpaquePayload,
    Packet,
    TCPHeader,
    UDPHeader,
    ip,
)
from repro.net.checksum import verify_checksum
from repro.net.packet import (
    ICMP_ECHO_REQUEST,
    PROTO_ICMP,
    PROTO_TCP,
    PROTO_UDP,
    TCP_ACK,
    TCP_SYN,
)


def make_udp_packet(payload=64):
    return Packet(
        headers=[
            IPv4Header("10.1.1.2", "10.1.2.3", PROTO_UDP),
            UDPHeader(5000, 5001),
        ],
        payload=OpaquePayload(payload),
    )


class TestHeaderStack:
    def test_wire_len_accounts_for_all_layers(self):
        pkt = make_udp_packet(payload=1430)
        assert pkt.wire_len == 20 + 8 + 1430

    def test_encap_decap(self):
        pkt = make_udp_packet()
        inner_ip = pkt.ip
        # Tunnel encapsulation: outer IP + UDP (as IIAS UDP tunnels do).
        pkt.encap(UDPHeader(33000, 33001))
        pkt.encap(IPv4Header("198.32.154.170", "198.32.154.250", PROTO_UDP))
        assert pkt.wire_len == 20 + 8 + 20 + 8 + 64
        assert str(pkt.ip.dst) == "198.32.154.250"  # outermost IP
        assert pkt.inner_ip is inner_ip
        pkt.decap()
        pkt.decap()
        assert pkt.ip is inner_ip

    def test_decap_empty_raises(self):
        with pytest.raises(IndexError):
            Packet().decap()

    def test_find_nth(self):
        pkt = make_udp_packet()
        pkt.encap(IPv4Header("1.1.1.1", "2.2.2.2", PROTO_UDP))
        assert str(pkt.find(IPv4Header, 0).src) == "1.1.1.1"
        assert str(pkt.find(IPv4Header, 1).src) == "10.1.1.2"
        assert pkt.find(IPv4Header, 2) is None
        assert pkt.find(TCPHeader) is None

    def test_copy_isolates_header_writes_and_meta(self):
        pkt = make_udp_packet()
        pkt.meta["annotation"] = "x"
        clone = pkt.copy()
        clone.writable(IPv4Header).ttl = 1
        clone.meta["annotation"] = "y"
        assert pkt.ip.ttl == 64
        assert pkt.meta["annotation"] == "x"
        assert clone.uid != pkt.uid

    def test_copy_is_copy_on_write(self):
        pkt = make_udp_packet()
        clone = pkt.copy()
        # Headers are shared until someone writes ...
        assert clone.ip is pkt.ip
        assert clone.udp is pkt.udp
        # ... then the writer materializes private copies, once.
        header = clone.writable(IPv4Header)
        assert header is not pkt.ip
        assert header is clone.writable(IPv4Header)
        header.ttl = 9
        assert pkt.ip.ttl == 64
        # The original's view is unchanged by the clone's write.
        assert clone.ip.ttl == 9

    def test_original_write_does_not_leak_into_clone(self):
        pkt = make_udp_packet()
        clone = pkt.copy()
        pkt.writable(IPv4Header).ttl = 3
        assert clone.ip.ttl == 64

    def test_copy_stacks_are_independent(self):
        pkt = make_udp_packet()
        clone = pkt.copy()
        clone.encap(IPv4Header("1.1.1.1", "2.2.2.2", PROTO_UDP))
        assert len(pkt.headers) == 2
        assert len(clone.headers) == 3
        clone.decap()
        clone.decap()
        assert len(pkt.headers) == 2

    def test_deep_copy_still_available(self):
        pkt = make_udp_packet()
        clone = pkt.copy(deep=True)
        assert clone.ip is not pkt.ip
        clone.ip.ttl = 1  # direct mutation is fine on a deep copy
        assert pkt.ip.ttl == 64

    def test_pack_does_not_mutate_shared_headers(self):
        pkt = make_udp_packet()
        clone = pkt.copy()
        wire = clone.pack()
        assert len(wire) == clone.wire_len
        assert pkt.ip.total_length == 0  # pack() left the header alone
        assert clone.ip is pkt.ip

    def test_payload_data_travels(self):
        pkt = Packet(payload=OpaquePayload(100, data={"t": 1.5}, tag="ping"))
        assert pkt.payload.data == {"t": 1.5}
        assert pkt.copy().payload.data == {"t": 1.5}

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            OpaquePayload(-1)


class TestWireFormat:
    def test_ipv4_pack_unpack_roundtrip(self):
        header = IPv4Header("10.0.0.1", "10.0.0.2", PROTO_TCP, ttl=17, tos=0x10)
        data = header.pack(payload_length=100)
        assert len(data) == 20
        parsed = IPv4Header.unpack(data)
        assert str(parsed.src) == "10.0.0.1"
        assert str(parsed.dst) == "10.0.0.2"
        assert parsed.ttl == 17
        assert parsed.tos == 0x10
        assert parsed.total_length == 120
        assert verify_checksum(data)

    def test_ipv4_unpack_rejects_non_v4(self):
        with pytest.raises(ValueError):
            IPv4Header.unpack(b"\x60" + b"\x00" * 19)

    def test_tcp_pack_unpack_roundtrip(self):
        header = TCPHeader(80, 5555, seq=1000, ack=2000, flags=TCP_SYN | TCP_ACK, window=16384)
        data = header.pack(b"hi", src=1, dst=2)
        parsed = TCPHeader.unpack(data)
        assert parsed.sport == 80
        assert parsed.seq == 1000
        assert parsed.syn and parsed.ack_flag and not parsed.fin
        assert parsed.window == 16384

    def test_udp_pack_unpack_roundtrip(self):
        data = UDPHeader(33434, 53).pack(b"payload", src=5, dst=6)
        parsed = UDPHeader.unpack(data)
        assert (parsed.sport, parsed.dport) == (33434, 53)

    def test_icmp_pack_unpack_roundtrip(self):
        data = ICMPHeader(ICMP_ECHO_REQUEST, ident=7, seq=42).pack(b"x" * 56)
        parsed = ICMPHeader.unpack(data)
        assert parsed.type == ICMP_ECHO_REQUEST
        assert (parsed.ident, parsed.seq) == (7, 42)

    def test_ethernet_roundtrip(self):
        data = EthernetHeader(src=0xAABBCCDDEEFF, dst=0x112233445566).pack()
        parsed = EthernetHeader.unpack(data)
        assert parsed.src == 0xAABBCCDDEEFF
        assert parsed.dst == 0x112233445566

    def test_full_packet_pack_length(self):
        pkt = make_udp_packet(payload=10)
        data = pkt.pack()
        assert len(data) == pkt.wire_len
        # Outer header parses back.
        parsed = IPv4Header.unpack(data)
        assert parsed.total_length == pkt.wire_len

    def test_tunnel_packet_pack(self):
        pkt = make_udp_packet(payload=10)
        pkt.encap(UDPHeader(33000, 33001))
        pkt.encap(IPv4Header("198.32.154.170", "198.32.154.250", PROTO_UDP))
        data = pkt.pack()
        assert len(data) == pkt.wire_len
        outer = IPv4Header.unpack(data)
        assert str(outer.dst) == "198.32.154.250"
        inner = IPv4Header.unpack(data[28:])
        assert str(inner.dst) == "10.1.2.3"

    def test_icmp_packet_pack(self):
        pkt = Packet(
            headers=[
                IPv4Header("10.0.0.1", "10.0.0.2", PROTO_ICMP),
                ICMPHeader(ICMP_ECHO_REQUEST, ident=1, seq=1),
            ],
            payload=OpaquePayload(56),
        )
        data = pkt.pack()
        assert len(data) == 20 + 8 + 56
        assert verify_checksum(data[20:])  # ICMP checksum covers payload


class TestTCPFlags:
    def test_flag_string(self):
        assert TCPHeader(1, 2, flags=TCP_SYN).flag_string() == "S"
        assert "." in TCPHeader(1, 2, flags=TCP_ACK).flag_string()
        assert TCPHeader(1, 2).flag_string() == "-"
