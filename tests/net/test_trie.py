"""Unit and property tests for the radix trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Prefix, RadixTrie, prefix


def test_empty_lookup_raises():
    trie = RadixTrie()
    with pytest.raises(KeyError):
        trie.lookup("10.0.0.1")
    assert trie.lookup_entry("10.0.0.1") is None


def test_basic_insert_lookup():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", "A")
    assert trie.lookup("10.1.2.3") == "A"
    with pytest.raises(KeyError):
        trie.lookup("11.0.0.1")


def test_longest_prefix_wins():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", "short")
    trie.insert("10.1.0.0/16", "mid")
    trie.insert("10.1.1.0/24", "long")
    assert trie.lookup("10.1.1.1") == "long"
    assert trie.lookup("10.1.2.1") == "mid"
    assert trie.lookup("10.2.0.1") == "short"


def test_default_route_matches_everything():
    trie = RadixTrie()
    trie.insert("0.0.0.0/0", "default")
    trie.insert("10.0.0.0/8", "ten")
    assert trie.lookup("192.0.2.1") == "default"
    assert trie.lookup("10.0.0.1") == "ten"


def test_host_routes():
    trie = RadixTrie()
    trie.insert("10.0.0.1/32", "host")
    trie.insert("10.0.0.0/24", "net")
    assert trie.lookup("10.0.0.1") == "host"
    assert trie.lookup("10.0.0.2") == "net"


def test_replace_value():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", "old")
    trie.insert("10.0.0.0/8", "new")
    assert trie.lookup("10.0.0.1") == "new"
    assert len(trie) == 1


def test_remove():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", "A")
    trie.insert("10.1.0.0/16", "B")
    assert trie.remove("10.1.0.0/16") == "B"
    assert trie.lookup("10.1.0.1") == "A"
    assert len(trie) == 1
    with pytest.raises(KeyError):
        trie.remove("10.1.0.0/16")


def test_remove_keeps_more_specific():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", "A")
    trie.insert("10.1.0.0/16", "B")
    trie.remove("10.0.0.0/8")
    assert trie.lookup("10.1.0.1") == "B"
    with pytest.raises(KeyError):
        trie.lookup("10.2.0.1")


def test_exact_and_contains():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", "A")
    assert trie.exact("10.0.0.0/8") == "A"
    assert "10.0.0.0/8" in trie
    assert "10.0.0.0/16" not in trie
    with pytest.raises(KeyError):
        trie.exact("10.0.0.0/9")
    assert trie.get("10.0.0.0/9", "dflt") == "dflt"


def test_sibling_split():
    # Forces an edge split: 10.0.0.0/24 and 10.0.1.0/24 share /23.
    trie = RadixTrie()
    trie.insert("10.0.0.0/24", "left")
    trie.insert("10.0.1.0/24", "right")
    assert trie.lookup("10.0.0.5") == "left"
    assert trie.lookup("10.0.1.5") == "right"
    with pytest.raises(KeyError):
        trie.lookup("10.0.2.5")


def test_split_point_gains_value():
    trie = RadixTrie()
    trie.insert("10.0.1.0/24", "leaf")
    trie.insert("10.0.0.0/23", "mid")  # covers the leaf
    assert trie.lookup("10.0.0.1") == "mid"
    assert trie.lookup("10.0.1.1") == "leaf"


def test_items_returns_all():
    trie = RadixTrie()
    entries = {"10.0.0.0/8": 1, "10.1.0.0/16": 2, "192.168.0.0/24": 3, "0.0.0.0/0": 4}
    for text, value in entries.items():
        trie.insert(text, value)
    found = {str(p): v for p, v in trie.items()}
    assert found == entries
    assert sorted(str(p) for p in trie) == sorted(entries)


def test_clear():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", 1)
    trie.clear()
    assert len(trie) == 0
    assert trie.lookup_entry("10.0.0.1") is None


# ----------------------------------------------------------------------
# Property tests: the trie agrees with a brute-force reference.
# ----------------------------------------------------------------------
prefixes = st.tuples(
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
).map(lambda t: Prefix(t[0], t[1]))

addresses = st.integers(min_value=0, max_value=2**32 - 1)


def _reference_lookup(table, addr):
    best = None
    for pfx, value in table.items():
        if addr in pfx and (best is None or pfx.plen > best[0].plen):
            best = (pfx, value)
    return best


@settings(max_examples=200, deadline=None)
@given(st.lists(prefixes, max_size=40), addresses)
def test_trie_matches_bruteforce(pfx_list, addr):
    trie = RadixTrie()
    table = {}
    for i, pfx in enumerate(pfx_list):
        trie.insert(pfx, i)
        table[pfx] = i
    expected = _reference_lookup(table, addr)
    got = trie.lookup_entry(addr)
    if expected is None:
        assert got is None
    else:
        assert got is not None
        assert got[0] == expected[0]
        assert got[1] == expected[1]


@settings(max_examples=100, deadline=None)
@given(st.lists(prefixes, max_size=30, unique_by=lambda p: p.key))
def test_insert_then_remove_leaves_empty(pfx_list):
    trie = RadixTrie()
    for i, pfx in enumerate(pfx_list):
        trie.insert(pfx, i)
    assert len(trie) == len(pfx_list)
    for pfx in pfx_list:
        trie.remove(pfx)
    assert len(trie) == 0
    assert trie.lookup_entry(0) is None


@settings(max_examples=100, deadline=None)
@given(st.lists(prefixes, max_size=30))
def test_items_roundtrip(pfx_list):
    trie = RadixTrie()
    expected = {}
    for i, pfx in enumerate(pfx_list):
        trie.insert(pfx, i)
        expected[pfx] = i
    assert dict(trie.items()) == expected


# ----------------------------------------------------------------------
# Edge cases: default route, /32 leaves, remove/lookup interactions.
# ----------------------------------------------------------------------
def test_default_route_matches_everything():
    trie = RadixTrie()
    trie.insert("0.0.0.0/0", "default")
    assert trie.lookup("1.2.3.4") == "default"
    assert trie.lookup("255.255.255.255") == "default"
    trie.insert("10.0.0.0/8", "ten")
    assert trie.lookup("10.9.9.9") == "ten"
    assert trie.lookup("11.0.0.1") == "default"
    pfx, value = trie.lookup_entry("11.0.0.1")
    assert str(pfx) == "0.0.0.0/0" and value == "default"


def test_host_route_leaf():
    trie = RadixTrie()
    trie.insert("192.168.1.0/24", "net")
    trie.insert("192.168.1.77/32", "host")
    assert trie.lookup("192.168.1.77") == "host"
    assert trie.lookup("192.168.1.78") == "net"
    assert trie.exact("192.168.1.77/32") == "host"
    assert len(trie) == 2


def test_insert_remove_lookup_sequence():
    trie = RadixTrie()
    trie.insert("10.0.0.0/8", "a")
    trie.insert("10.1.0.0/16", "b")
    trie.insert("10.1.2.0/24", "c")
    assert trie.lookup("10.1.2.3") == "c"
    assert trie.remove("10.1.2.0/24") == "c"
    assert trie.lookup("10.1.2.3") == "b"
    assert trie.remove("10.1.0.0/16") == "b"
    assert trie.lookup("10.1.2.3") == "a"
    assert trie.remove("10.0.0.0/8") == "a"
    with pytest.raises(KeyError):
        trie.lookup("10.1.2.3")
    assert len(trie) == 0
    # Reinsertion after full removal works.
    trie.insert("10.1.0.0/16", "b2")
    assert trie.lookup("10.1.2.3") == "b2"


def test_lookup_after_remove_with_structural_nodes():
    """remove() leaves structural nodes; they must stay invisible."""
    trie = RadixTrie()
    trie.insert("10.0.0.0/9", "left")
    trie.insert("10.128.0.0/9", "right")  # forces a split node at /8
    trie.insert("10.0.0.0/8", "parent")
    assert trie.remove("10.0.0.0/9") == "left"
    # The /9 node may remain structurally, but matches fall through to /8.
    assert trie.lookup("10.5.0.1") == "parent"
    assert "10.0.0.0/9" not in trie
    with pytest.raises(KeyError):
        trie.exact("10.0.0.0/9")
    assert sorted(str(p) for p in trie.keys()) == ["10.0.0.0/8", "10.128.0.0/9"]
    with pytest.raises(KeyError):
        trie.remove("10.0.0.0/9")  # double remove raises
