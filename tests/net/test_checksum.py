"""Unit and property tests for the Internet checksum."""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.net.checksum import internet_checksum, pseudo_header_sum, verify_checksum


def test_rfc1071_example():
    # The classic example from RFC 1071 §3.
    data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
    assert internet_checksum(data) == 0xFFFF - 0xDDF2 + 0  # ~0xDDF2 & 0xFFFF
    assert internet_checksum(data) == (~0xDDF2) & 0xFFFF


def test_odd_length_pads_with_zero():
    assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")


def test_empty_is_all_ones():
    assert internet_checksum(b"") == 0xFFFF


@given(st.binary(max_size=256))
def test_checksum_verifies_after_insertion(data):
    # Append the checksum as the final 16-bit word; whole must verify.
    if len(data) % 2:
        data += b"\x00"
    checksum = internet_checksum(data)
    assert verify_checksum(data + struct.pack("!H", checksum))


@given(st.binary(min_size=2, max_size=256))
def test_corruption_detected(data):
    if len(data) % 2:
        data += b"\x00"
    checksum = internet_checksum(data)
    packet = bytearray(data + struct.pack("!H", checksum))
    packet[0] ^= 0x01  # flip one bit
    # One's-complement sums detect any single-bit error.
    assert not verify_checksum(bytes(packet))


def test_pseudo_header_sum_feeds_initial():
    payload = b"\x12\x34"
    pseudo = pseudo_header_sum(0x0A000001, 0x0A000002, 17, len(payload))
    full = internet_checksum(payload, initial=pseudo)
    # Folding is order-independent: same as summing everything at once.
    manual = internet_checksum(
        b"\x0a\x00\x00\x01\x0a\x00\x00\x02\x00\x11\x00\x02" + payload
    )
    assert full == manual
