"""FaultPlan: builder semantics, seeded determinism, installation."""

import pytest

from repro.core.infrastructure import VINI
from repro.faults import FaultPlan, UnsupportedFault
from repro.faults.plan import PhysicalTarget
from repro.sim.engine import Simulator
from repro.topologies import build_line


def _pair():
    """A 2-node physical network for install tests."""
    vini = VINI(seed=3)
    vini.add_node("a")
    vini.add_node("b")
    vini.connect("a", "b", delay=0.001)
    vini.install_underlay_routes()
    return vini


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def test_fail_link_with_duration_adds_recovery():
    plan = FaultPlan().fail_link(5.0, "a", "b", duration=2.5)
    assert plan.timetable() == [(5.0, "fail a=b"), (7.5, "recover a=b")]


def test_flap_link_expands_to_cycles():
    plan = FaultPlan().flap_link("a", "b", start=1.0, down=2.0, up=3.0, count=2)
    assert plan.timetable() == [
        (1.0, "fail a=b"),
        (3.0, "recover a=b"),
        (6.0, "fail a=b"),
        (8.0, "recover a=b"),
    ]


def test_loss_episode_sets_and_restores():
    plan = FaultPlan().loss_episode(2.0, "a", "b", duration=3.0, drop_prob=0.25)
    times = [t for t, _ in plan.timetable()]
    assert times == [2.0, 5.0]
    assert plan.actions[0].args == ("a", "b", 0.25)
    assert plan.actions[1].args == ("a", "b", 0.0)


def test_crash_node_with_duration_adds_restart():
    plan = FaultPlan().crash_node(1.0, "x", duration=4.0)
    assert [a.kind for a in plan.actions] == ["crash_node", "restart_node"]
    assert plan.actions[1].time == 5.0


@pytest.mark.parametrize(
    "build",
    [
        lambda p: p.fail_link(-1.0, "a", "b"),
        lambda p: p.fail_link(0.0, "a", "b", duration=0.0),
        lambda p: p.flap_link("a", "b", start=0.0, down=0.0, up=1.0),
        lambda p: p.flap_link("a", "b", start=0.0, down=1.0, up=1.0, count=0),
        lambda p: p.loss_episode(0.0, "a", "b", duration=1.0, drop_prob=1.5),
        lambda p: p.cpu_burst(0.0, "a", duration=-1.0),
        lambda p: p.random_flaps([("a", "b")], (0.0, 1.0), count=0),
    ],
)
def test_builder_validation(build):
    with pytest.raises(ValueError):
        build(FaultPlan())


# ----------------------------------------------------------------------
# Seeded-random determinism
# ----------------------------------------------------------------------
def _random_plan():
    return (
        FaultPlan("storm")
        .fail_link(1.0, "a", "b", duration=1.0)
        .random_flaps([("a", "b"), ("b", "c")], (5.0, 20.0), count=6)
        .random_loss_episodes([("a", "b")], (5.0, 20.0), count=3)
    )


def _schedule(seed):
    sim = Simulator(seed=seed)
    return [
        (a.time, a.kind, a.args) for a in _random_plan().resolve(sim)
    ]


def test_seeded_generators_replay_identically():
    assert _schedule(42) == _schedule(42)


def test_different_seeds_give_different_schedules():
    assert _schedule(42) != _schedule(43)


def test_resolve_does_not_mutate_the_plan():
    plan = _random_plan()
    before = len(plan.actions)
    sim = Simulator(seed=1)
    expanded = plan.resolve(sim)
    assert len(plan.actions) == before
    assert len(expanded) > before


def test_resolve_is_sorted_and_tie_stable():
    plan = (
        FaultPlan()
        .recover_link(3.0, "x", "y")  # built first, fires first at t=3
        .fail_link(1.0, "a", "b")
        .fail_link(3.0, "a", "b")
    )
    sim = Simulator(seed=0)
    resolved = plan.resolve(sim)
    assert [a.time for a in resolved] == [1.0, 3.0, 3.0]
    assert resolved[1].label == "recover x=y"  # build order breaks the tie


def test_generator_draws_are_stream_isolated():
    """Another subsystem consuming simulator randomness does not shift
    the plan's schedule (named-stream isolation)."""
    sim_a = Simulator(seed=7)
    sim_b = Simulator(seed=7)
    sim_b.rng("other.subsystem").random()  # unrelated draw
    plan = _random_plan()
    assert [(a.time, a.args) for a in plan.resolve(sim_a)] == [
        (a.time, a.args) for a in plan.resolve(sim_b)
    ]


# ----------------------------------------------------------------------
# Installation
# ----------------------------------------------------------------------
def test_install_on_vini_fails_and_recovers_the_link():
    vini = _pair()
    link = vini.link_between("a", "b")
    plan = FaultPlan("t").fail_link(1.0, "a", "b", duration=2.0)
    plan.install(vini)
    vini.run(until=1.5)
    assert not link.up
    vini.run(until=4.0)
    assert link.up
    faults = list(vini.sim.trace.select("fault", plan="t"))
    assert [r["action"] for r in faults] == ["fail_link", "recover_link"]


def test_install_offset_shifts_the_whole_schedule():
    vini = _pair()
    link = vini.link_between("a", "b")
    plan = FaultPlan().fail_link(1.0, "a", "b")
    vini.run(until=5.0)
    plan.install(vini, offset=10.0)
    vini.run(until=10.5)
    assert link.up
    vini.run(until=11.5)
    assert not link.up


def test_call_escape_hatch():
    vini = _pair()
    fired = []
    plan = FaultPlan().at(2.0, fired.append, "marker", label="custom")
    plan.install(vini)
    vini.run(until=3.0)
    assert fired == ["marker"]


def test_cpu_burst_loads_the_node_then_stops():
    vini = _pair()
    node = vini.nodes["a"]
    plan = FaultPlan().cpu_burst(1.0, "a", duration=2.0)
    plan.install(vini)
    vini.run(until=10.0)
    # The hog consumed roughly the burst window and nothing more.
    assert 1.5 < node.cpu.busy_time < 2.6


def test_physical_target_rejects_loss_episodes():
    vini = _pair()
    plan = FaultPlan().loss_episode(1.0, "a", "b", duration=1.0, drop_prob=0.5)
    plan.install(vini)
    with pytest.raises(UnsupportedFault):
        vini.run(until=2.0)


def test_install_rejects_unknown_targets():
    with pytest.raises(TypeError):
        FaultPlan().install(object())


def test_same_plan_installs_on_many_targets():
    plan = FaultPlan().fail_link(1.0, "a", "b")
    for _ in range(2):
        vini = _pair()
        plan.install(vini)
        vini.run(until=2.0)
        assert not vini.link_between("a", "b").up


def test_experiment_install_records_the_timetable():
    vini, exp = build_line(3, realtime=True)
    plan = FaultPlan("lineplan").fail_link(2.0, "n0", "n1", duration=1.0)
    exp.apply_faults(plan, offset=5.0)
    assert (7.0, "fail n0=n1") in exp.timetable()
    assert (8.0, "recover n0=n1") in exp.timetable()
    vini.run(until=7.5)
    assert exp.network.link_between("n0", "n1").failed
    vini.run(until=9.0)
    assert not exp.network.link_between("n0", "n1").failed


def test_physical_target_adapter_is_reusable():
    vini = _pair()
    adapter = PhysicalTarget(vini)
    FaultPlan().fail_link(1.0, "a", "b").install(adapter)
    FaultPlan().recover_link(2.0, "a", "b").install(adapter)
    vini.run(until=3.0)
    assert vini.link_between("a", "b").up
