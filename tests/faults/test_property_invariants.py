"""Property tests: random topologies + random fault plans never make the
invariant checker cry wolf on a static-routed physical network.

Static underlay routes are loop-free by construction (shortest-path
trees), so whatever a `FaultPlan` does — flaps, crashes, CPU bursts —
the checker must come up clean once the dust settles.  Violations on
such runs would be false alarms.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.core.infrastructure import VINI
from repro.faults import FaultPlan, InvariantChecker
from repro.sim.engine import Simulator
from repro.tools import Ping

END_AT = 8.0  # past every drawn fault's recovery


@st.composite
def topologies(draw):
    """A connected 3-6 node graph: a line backbone plus random chords."""
    n = draw(st.integers(min_value=3, max_value=6))
    edges = [(f"n{i}", f"n{i + 1}") for i in range(n - 1)]
    chords = [
        (f"n{i}", f"n{j}")
        for i in range(n)
        for j in range(i + 2, n)
    ]
    for chord in chords:
        if draw(st.booleans()):
            edges.append(chord)
    return n, edges


@st.composite
def fault_events(draw, nodes, edges):
    kind = draw(st.sampled_from(["flap", "crash", "burst"]))
    at = draw(st.floats(min_value=0.2, max_value=3.0))
    if kind == "flap":
        a, b = draw(st.sampled_from(edges))
        return (
            "flap", a, b, at,
            draw(st.floats(min_value=0.1, max_value=0.8)),  # down
            draw(st.floats(min_value=0.1, max_value=0.8)),  # up
            draw(st.integers(min_value=1, max_value=2)),  # count
        )
    node = draw(st.sampled_from(nodes))
    if kind == "crash":
        return ("crash", node, at,
                draw(st.floats(min_value=0.2, max_value=1.0)))
    return ("burst", node, at,
            draw(st.floats(min_value=0.1, max_value=0.5)))


@st.composite
def scenarios(draw):
    n, edges = draw(topologies())
    nodes = [f"n{i}" for i in range(n)]
    events = draw(
        st.lists(fault_events(nodes=nodes, edges=edges), min_size=1,
                 max_size=5)
    )
    pairs = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            min_size=1, max_size=3,
        )
    )
    return n, edges, events, pairs


def _build(n, edges):
    vini = VINI(seed=7)
    for i in range(n):
        vini.add_node(f"n{i}")
    for a, b in edges:
        vini.connect(a, b, delay=0.001)
    vini.install_underlay_routes()
    return vini


def _plan(events):
    plan = FaultPlan("drawn")
    for event in events:
        if event[0] == "flap":
            _, a, b, at, down, up, count = event
            plan.flap_link(a, b, start=at, down=down, up=up, count=count)
        elif event[0] == "crash":
            _, node, at, duration = event
            plan.crash_node(at, node, duration=duration)
        else:
            _, node, at, duration = event
            plan.cpu_burst(at, node, duration=duration)
    return plan


@settings(max_examples=15, deadline=None)
@given(scenarios())
def test_no_false_alarms_under_random_faults(scenario):
    n, edges, events, pairs = scenario
    vini = _build(n, edges)
    checker = InvariantChecker(vini).install()
    _plan(events).install(vini)
    for src, dst in pairs:
        if src == dst:
            continue
        Ping(vini.nodes[src], vini.nodes[dst].address, count=10,
             interval=0.3).start()
    vini.run(until=END_AT)
    checker.check_now()
    assert checker.violations == [], checker.report()


@settings(max_examples=15, deadline=None)
@given(scenarios(), st.integers(min_value=0, max_value=2**32 - 1))
def test_drawn_plans_resolve_deterministically(scenario, seed):
    _, edges, events, _ = scenario
    plan = _plan(events).random_flaps(edges, (4.0, 7.0), count=3)
    schedules = [
        [(a.time, a.kind, a.args)
         for a in plan.resolve(Simulator(seed=seed))]
        for _ in range(2)
    ]
    assert schedules[0] == schedules[1]
