"""InvariantChecker: detection power and freedom from false alarms."""

import pytest

from repro.core.experiment import Experiment
from repro.core.infrastructure import VINI
from repro.faults import FaultPlan, InvariantChecker
from repro.net.addr import Prefix, prefix
from repro.routing import RibRoute
from repro.tools import Ping
from repro.topologies import build_line


def _triangle():
    vini = VINI(seed=9)
    for name in ("a", "b", "c"):
        vini.add_node(name)
    vini.connect("a", "b", delay=0.001)
    vini.connect("b", "c", delay=0.001)
    vini.connect("a", "c", delay=0.001)
    vini.install_underlay_routes()
    return vini


def _iface_toward(vini, node_name, other_name):
    node = vini.nodes[node_name]
    link = vini.link_between(node_name, other_name)
    return next(i for i in node.interfaces.values() if i.link is link)


def test_rejects_unknown_targets():
    with pytest.raises(TypeError):
        InvariantChecker(42)


# ----------------------------------------------------------------------
# Clean runs stay clean
# ----------------------------------------------------------------------
def test_healthy_physical_network_is_clean():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    ping = Ping(vini.nodes["a"], vini.nodes["c"].address, count=10,
                interval=0.2)
    ping.start()
    vini.run(until=5.0)
    checker.check_now()
    assert checker.violations == []
    assert ping.received == 10


def test_install_enables_the_quiet_fwd_kind():
    vini = _triangle()
    assert not vini.sim.trace.wants("fwd")
    InvariantChecker(vini).install()
    assert vini.sim.trace.wants("fwd")


def test_clean_through_a_fault_schedule():
    """Failures create blackholes, not violations: a fault plan on a
    static-routed network must not trip the checker."""
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    plan = (
        FaultPlan("mix")
        .fail_link(0.5, "a", "b", duration=1.0)
        .crash_node(2.0, "b", duration=1.0)
        .cpu_burst(3.5, "c", duration=0.5)
    )
    plan.install(vini)
    ping = Ping(vini.nodes["a"], vini.nodes["c"].address, count=40,
                interval=0.1)
    ping.start()
    vini.run(until=6.0)
    checker.check_now()
    checker.assert_clean()


# ----------------------------------------------------------------------
# Structural loop detection
# ----------------------------------------------------------------------
def test_detects_planted_physical_forwarding_loop():
    vini = _triangle()
    c_addr = vini.nodes["c"].address
    vini.nodes["a"].add_route(
        Prefix(c_addr, 32), interface=_iface_toward(vini, "a", "b")
    )
    vini.nodes["b"].add_route(
        Prefix(c_addr, 32), interface=_iface_toward(vini, "b", "a")
    )
    checker = InvariantChecker(vini).install()
    checker.check_forwarding_loops()
    loops = [v for v in checker.violations if v.invariant == "forwarding_loop"]
    assert loops
    assert loops[0].detail["layer"] == "physical"
    assert loops[0].detail["dst"] == "c"
    with pytest.raises(AssertionError):
        checker.assert_clean()


def test_detects_planted_overlay_forwarding_loop():
    vini, exp = build_line(3)
    n0, n1, n2 = (exp.network.nodes[n] for n in ("n0", "n1", "n2"))
    n0.xorp.rib.update(
        RibRoute(Prefix(n2.tap_addr, 32), None, "to_n1", "static", 1)
    )
    n1.xorp.rib.update(
        RibRoute(Prefix(n2.tap_addr, 32), None, "to_n0", "static", 1)
    )
    checker = InvariantChecker(exp).install()
    checker.check_forwarding_loops()
    loops = [v for v in checker.violations if v.invariant == "forwarding_loop"]
    assert loops and loops[0].detail["layer"] == "overlay"


def test_walk_overlay_path_reports_the_planted_loop():
    from repro.faults import walk_overlay_path

    vini, exp = build_line(3)
    n0, n1, n2 = (exp.network.nodes[n] for n in ("n0", "n1", "n2"))
    n0.xorp.rib.update(
        RibRoute(Prefix(n2.tap_addr, 32), None, "to_n1", "static", 1)
    )
    n1.xorp.rib.update(
        RibRoute(Prefix(n2.tap_addr, 32), None, "to_n0", "static", 1)
    )
    status, path = walk_overlay_path(exp.network, n0, n2)
    assert status == "loop"
    assert path[0] == "n0" and path[-1] in ("n0", "n1")


def test_blackhole_is_not_a_loop():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    vini.link_between("a", "c").fail()
    vini.nodes["b"].crash()
    checker.check_forwarding_loops()
    assert checker.violations == []


# ----------------------------------------------------------------------
# TTL monotonicity and the per-packet loop sentinel
# ----------------------------------------------------------------------
def test_flags_non_decreasing_ttl():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    trace = vini.sim.trace
    trace.log("fwd", node="a", uid=77, ttl=10)
    trace.log("fwd", node="b", uid=77, ttl=10)  # did not decrease
    bad = [v for v in checker.violations if v.invariant == "ttl_monotonicity"]
    assert len(bad) == 1
    assert bad[0].detail["uid"] == 77


def test_strictly_decreasing_ttl_is_fine():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    trace = vini.sim.trace
    for ttl in (64, 63, 62, 61):
        trace.log("fwd", node="x", uid=5, ttl=ttl)
    assert checker.violations == []


def test_per_packet_hop_bound_catches_runaway_packets():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    trace = vini.sim.trace
    for hop in range(300):
        trace.log("fwd", node="x", uid=9, ttl=1000 - hop)
    loops = [v for v in checker.violations if v.invariant == "forwarding_loop"]
    assert len(loops) == 1  # reported once, not per extra hop


def test_violation_carries_the_triggering_event_context():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    trace = vini.sim.trace
    trace.log("fault", plan="p", action="fail_link", label="fail a=b")
    trace.log("fwd", node="a", uid=1, ttl=8)
    trace.log("fwd", node="b", uid=1, ttl=9)
    assert checker.violations
    assert "fail a=b" in checker.violations[0].context
    # The violation is itself on the trace for tooling to query.
    assert trace.count("invariant_violation") == 1


# ----------------------------------------------------------------------
# Conservation
# ----------------------------------------------------------------------
def test_link_conservation_holds_after_traffic_and_failures():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    ping = Ping(vini.nodes["a"], vini.nodes["b"].address, count=20,
                interval=0.05)
    ping.start()
    vini.sim.schedule(0.4, vini.link_between("a", "b").fail)
    vini.sim.schedule(0.8, vini.link_between("a", "b").recover)
    vini.run(until=3.0)
    checker.check_conservation()
    assert checker.violations == []


def test_detects_a_cooked_channel_counter():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    vini.run(until=0.1)
    link = vini.link_between("a", "b")
    channel = next(iter(link._channels.values()))
    channel.offered += 3  # a packet entered that never left
    checker.check_conservation()
    bad = [v for v in checker.violations if v.invariant == "conservation"]
    assert bad and bad[0].detail["link"] == link.name


def test_detects_drop_counter_trace_disagreement():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    link = vini.link_between("a", "b")
    channel = next(iter(link._channels.values()))
    channel.drops += 1  # counted but never traced...
    channel.offered += 1  # ...kept conservation-consistent
    checker.check_conservation()
    bad = [v for v in checker.violations if v.invariant == "drop_accounting"]
    assert bad and bad[0].detail["counter"] == 1


def test_detects_a_cooked_shaper_counter():
    vini = VINI(seed=4)
    vini.add_node("a")
    vini.add_node("b")
    vini.connect("a", "b", delay=0.001)
    vini.install_underlay_routes()
    exp = Experiment(vini)
    exp.add_node("va", "a")
    exp.add_node("vb", "b")
    exp.connect("va", "vb", bandwidth=1e6)
    checker = InvariantChecker(exp).install()
    shaper = exp.network.nodes["va"].click["shape_to_vb"]
    shaper.offered += 1
    checker.check_conservation()
    bad = [v for v in checker.violations if v.invariant == "conservation"]
    assert bad and bad[0].detail["element"] == "shape_to_vb"


# ----------------------------------------------------------------------
# RIB <-> FIB consistency
# ----------------------------------------------------------------------
def _two_node_overlay():
    vini, exp = build_line(2)
    return vini, exp, exp.network.nodes["n0"]


def test_rib_fib_sweep_clean_on_static_routes():
    vini, exp, vnode = _two_node_overlay()
    checker = InvariantChecker(exp).install()
    vnode.xorp.rib.update(
        RibRoute("10.9.0.0/24", None, "local", "static", 1)
    )
    checker.check_rib_fib()
    assert checker.violations == []


def test_incremental_check_catches_broken_fib_programming():
    vini, exp, vnode = _two_node_overlay()
    checker = InvariantChecker(exp).install()
    vnode.lookup.add_route = lambda *a, **k: None  # FIB silently broken
    vnode.xorp.rib.update(
        RibRoute("10.9.9.0/24", None, "local", "static", 1)
    )
    bad = [v for v in checker.violations if v.invariant == "rib_fib"]
    assert bad and bad[0].detail["problem"] == "missing_fib_entry"


def test_sweep_catches_a_tampered_fib_entry():
    vini, exp, vnode = _two_node_overlay()
    vnode.xorp.rib.update(
        RibRoute("10.9.0.0/24", None, "local", "static", 1)
    )
    checker = InvariantChecker(exp).install()
    vnode.lookup.remove_route("10.9.0.0/24")
    checker.check_rib_fib()
    bad = [v for v in checker.violations if v.invariant == "rib_fib"]
    assert bad and bad[0].detail["problem"] == "missing_fib_entry"


def test_sweep_catches_a_stale_fea_route():
    vini, exp, vnode = _two_node_overlay()
    checker = InvariantChecker(exp).install()
    vnode.fea.routes[prefix("10.8.0.0/24").key] = (None, "local")
    checker.check_rib_fib()
    bad = [v for v in checker.violations if v.invariant == "rib_fib"]
    assert bad
    assert bad[0].detail["problem"] == "fea_route_without_rib_winner"


def test_withdrawal_reaching_the_fib_is_clean():
    vini, exp, vnode = _two_node_overlay()
    checker = InvariantChecker(exp).install()
    vnode.xorp.rib.update(
        RibRoute("10.9.0.0/24", None, "local", "static", 1)
    )
    vnode.xorp.rib.withdraw("10.9.0.0/24", "static")
    checker.check_rib_fib()
    assert checker.violations == []


def test_report_groups_by_invariant():
    vini = _triangle()
    checker = InvariantChecker(vini).install()
    trace = vini.sim.trace
    trace.log("fwd", node="a", uid=1, ttl=5)
    trace.log("fwd", node="b", uid=1, ttl=5)
    trace.log("fwd", node="c", uid=1, ttl=5)
    assert checker.report() == {"ttl_monotonicity": 2}
