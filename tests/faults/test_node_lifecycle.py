"""Crash/restart lifecycle for physical and virtual nodes."""

from repro.core.infrastructure import VINI
from repro.faults import FaultPlan
from repro.tools import Ping
from repro.topologies import build_line


def _triangle():
    vini = VINI(seed=5)
    for name in ("a", "b", "c"):
        vini.add_node(name)
    vini.connect("a", "b", delay=0.001)
    vini.connect("b", "c", delay=0.001)
    vini.connect("a", "c", delay=0.001)
    vini.install_underlay_routes()
    return vini


# ----------------------------------------------------------------------
# PhysicalNode
# ----------------------------------------------------------------------
def test_crash_downs_node_links_and_interfaces():
    vini = _triangle()
    b = vini.nodes["b"]
    b.crash()
    assert not b.alive
    assert not vini.link_between("a", "b").up
    assert not vini.link_between("b", "c").up
    assert vini.link_between("a", "c").up
    assert all(not iface.up for iface in b.interfaces.values())


def test_restart_recovers_exactly_what_the_crash_took_down():
    vini = _triangle()
    b = vini.nodes["b"]
    # A link failed deliberately before the crash stays failed.
    vini.link_between("a", "b").fail()
    b.crash()
    b.restart()
    assert b.alive
    assert not vini.link_between("a", "b").up  # experiment's failure
    assert vini.link_between("b", "c").up  # crash's failure, recovered
    assert all(iface.up for iface in b.interfaces.values())


def test_crash_and_restart_are_idempotent():
    vini = _triangle()
    b = vini.nodes["b"]
    b.restart()  # restart while alive: no-op
    b.crash()
    b.crash()  # double crash: no-op
    b.restart()
    assert b.alive
    assert vini.link_between("a", "b").up
    assert vini.link_between("b", "c").up


def test_shared_link_waits_for_both_neighbours():
    """A link between two crashed nodes recovers only when the second
    node restarts, regardless of restart order."""
    vini = _triangle()
    a, b = vini.nodes["a"], vini.nodes["b"]
    a.crash()
    b.crash()
    a.restart()
    assert not vini.link_between("a", "b").up  # b still down
    assert vini.link_between("a", "c").up
    b.restart()
    assert vini.link_between("a", "b").up
    assert vini.link_between("b", "c").up


def test_crash_discards_queued_cpu_work():
    vini = _triangle()
    b = vini.nodes["b"]
    ran = []
    b.kernel.exec_after(0.5, ran.append, "should not run")
    vini.run(until=0.1)
    b.crash()
    vini.run(until=2.0)
    assert ran == []


def test_crashed_node_neither_forwards_nor_originates():
    vini = _triangle()
    vini.run(until=0.1)
    b = vini.nodes["b"]
    b.crash()
    ping = Ping(b, vini.nodes["a"].address, count=3, interval=0.2)
    ping.start()
    vini.run(until=2.0)
    assert ping.received == 0


def test_crashed_node_drops_traffic_through_it():
    """Fate sharing: traffic riding a crashed node's links is lost, and
    every loss is accounted (counter == trace records)."""
    vini = _triangle()
    # Force a->c through b so the crash is on-path.
    a, c = vini.nodes["a"], vini.nodes["c"]
    vini.link_between("a", "c").fail()
    vini._compute_routes()
    ping = Ping(a, c.address, count=20, interval=0.1)
    ping.start()
    vini.sim.schedule(0.55, vini.nodes["b"].crash)
    vini.run(until=4.0)
    assert 0 < ping.received < 20
    for key, link in vini.links.items():
        drops = link.stats()["drops"]
        traced = vini.sim.trace.count("link_drop", link=link.name)
        assert drops == traced


def test_plan_driven_crash_with_duration_restarts():
    vini = _triangle()
    plan = FaultPlan("crash").crash_node(1.0, "b", duration=2.0)
    plan.install(vini)
    vini.run(until=1.5)
    assert not vini.nodes["b"].alive
    vini.run(until=4.0)
    assert vini.nodes["b"].alive
    assert vini.link_between("a", "b").up
    states = [
        (r.time, r["alive"])
        for r in vini.sim.trace.select("node_state", node="b")
    ]
    assert states == [(1.0, False), (3.0, True)]


# ----------------------------------------------------------------------
# VirtualNode (overlay crash: adjacent vlinks black-holed in Click)
# ----------------------------------------------------------------------
def test_virtual_node_crash_blackholes_adjacent_vlinks():
    vini, exp = build_line(3)
    n1 = exp.network.nodes["n1"]
    n1.crash()
    assert n1.crashed
    assert exp.network.link_between("n0", "n1").failed
    assert exp.network.link_between("n1", "n2").failed
    n1.restart()
    assert not n1.crashed
    assert not exp.network.link_between("n0", "n1").failed
    assert not exp.network.link_between("n1", "n2").failed


def test_virtual_node_restart_leaves_deliberate_failures_alone():
    vini, exp = build_line(3)
    exp.network.fail_link("n0", "n1")
    n1 = exp.network.nodes["n1"]
    n1.crash()
    n1.restart()
    assert exp.network.link_between("n0", "n1").failed
    assert not exp.network.link_between("n1", "n2").failed


def test_virtual_shared_vlink_waits_for_both_neighbours():
    vini, exp = build_line(3)
    n0, n1 = exp.network.nodes["n0"], exp.network.nodes["n1"]
    n0.crash()
    n1.crash()
    n0.restart()
    assert exp.network.link_between("n0", "n1").failed  # n1 still down
    n1.restart()
    assert not exp.network.link_between("n0", "n1").failed
    assert not exp.network.link_between("n1", "n2").failed


def test_plan_driven_virtual_crash():
    vini, exp = build_line(3)
    plan = FaultPlan().crash_node(1.0, "n1", duration=1.0)
    exp.apply_faults(plan)
    vini.run(until=1.5)
    assert exp.network.nodes["n1"].crashed
    vini.run(until=3.0)
    assert not exp.network.nodes["n1"].crashed
