"""Golden traces for the Fig-8 failover scenario under a FaultPlan.

Two guarantees, both byte-level:

* same seed, same plan => the full measurement trace replays
  identically (controlled experiments are *repeatable*, Section 6.2);
* a plan-driven run is event-for-event identical to the same scenario
  scheduled inline with ``fail_link_at``/``recover_link_at`` — the DSL
  adds a ``fault`` record per firing and changes nothing else.
"""

from repro.faults import FaultPlan
from repro.tools import Ping
from repro.topologies import build_abilene_iias

WARMUP = 40.0
FAIL_AT = 10.0
RECOVER_AT = 34.0
END_AT = 45.0
SEED = 8


def _serialize(sim, exclude=()):
    return "\n".join(
        f"{r.time:.9f} {r.kind} {sorted(r.fields.items())!r}"
        for r in sim.trace.records
        if r.kind not in exclude
    )


def _run(schedule):
    """Build the scenario, let ``schedule(exp)`` inject the failure."""
    vini, exp = build_abilene_iias(seed=SEED)
    exp.run(until=WARMUP)
    schedule(exp)
    washington = exp.network.nodes["washington"]
    seattle = exp.network.nodes["seattle"]
    Ping(
        washington.phys_node, seattle.tap_addr, sliver=washington.sliver,
        interval=0.5, count=int(END_AT / 0.5),
    ).start()
    vini.run(until=WARMUP + END_AT + 2.0)
    return vini.sim


def _with_plan(exp):
    plan = FaultPlan("fig8").fail_link(
        FAIL_AT, "denver", "kansascity", duration=RECOVER_AT - FAIL_AT
    )
    exp.apply_faults(plan, offset=WARMUP)


def _inline(exp):
    exp.fail_link_at(WARMUP + FAIL_AT, "denver", "kansascity")
    exp.recover_link_at(WARMUP + RECOVER_AT, "denver", "kansascity")


def test_fig8_fault_plan_replays_byte_identically():
    first = _serialize(_run(_with_plan))
    second = _serialize(_run(_with_plan))
    assert first == second
    assert "fault" in first  # the plan actually drove the failure


def test_fig8_unchanged_with_policy_layer_loaded():
    """The Gao-Rexford policy layer is importable — and even running,
    on its own simulator — without perturbing a policy-free golden
    run by a byte."""
    baseline = _serialize(_run(_with_plan))

    from repro.sim.engine import Simulator
    from repro.topologies.internet import build_policy_graph

    side_sim = Simulator(seed=99)
    build_policy_graph(side_sim, 3, [(1, 2), (1, 3)], [(2, 3)])
    side_sim.run(until=20.0)

    assert _serialize(_run(_with_plan)) == baseline


def test_fig8_fault_plan_matches_inline_baseline():
    """Modulo its own ``fault`` records, a plan-driven run is the same
    simulation as the hand-scheduled baseline."""
    planned_sim = _run(_with_plan)
    baseline_sim = _run(_inline)
    planned = _serialize(planned_sim, exclude=("fault",))
    baseline = _serialize(baseline_sim, exclude=("fault",))
    assert planned == baseline
    assert planned.count("vlink_state") == 2  # the failure and recovery
    # And the plan logged exactly its two firings.
    assert planned_sim.trace.count("fault", plan="fig8") == 2
    assert baseline_sim.trace.count("fault") == 0
