"""Test package."""
